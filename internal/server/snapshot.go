package server

import (
	"sort"
	"time"

	"press/internal/clock"
	"press/internal/cnet"
	"press/internal/snapio"
	"press/internal/trace"
)

// Snapshot support. The server serializes its protocol state — cache,
// directory, view, peers, in-flight requests, pooled disk/admit
// continuations, ring detector — but no callbacks: those are rebuilt by
// Restore, which constructs an unstarted server on the restored process
// environment, re-registers its listeners, re-attaches handlers to every
// restored connection, and re-claims its pending timers by serial.
//
// Phase 1 covers the INDEP and COOP(+ring) configurations; a server with
// queue monitoring or an external membership view refuses to snapshot.

// RegisterMessages registers every PRESS wire message with the snapshot
// codec, so mailbox entries, connection buffers, and send queues can
// carry them. Pooled messages decode as pool-less records (their Release
// leaks to the GC, the pre-pooling behaviour).
func RegisterMessages(c *snapio.MsgCodec) {
	c.Register("press.Req", (*ReqMsg)(nil),
		func(e *snapio.Encoder, m any) {
			r := m.(*ReqMsg)
			e.U64(r.ID)
			e.I64(int64(r.Doc))
			e.Bool(r.Probe)
		},
		func(d *snapio.Decoder) any {
			return &ReqMsg{ID: d.U64(), Doc: trace.DocID(d.I64()), Probe: d.Bool()}
		})
	c.Register("press.Resp", (*RespMsg)(nil),
		func(e *snapio.Encoder, m any) {
			r := m.(*RespMsg)
			e.U64(r.ID)
			e.Bool(r.OK)
			e.Bool(r.Probe)
			encNodes(e, r.View)
		},
		func(d *snapio.Decoder) any {
			return &RespMsg{ID: d.U64(), OK: d.Bool(), Probe: d.Bool(), View: decNodes(d)}
		})
	c.Register("press.Hello", HelloMsg{},
		func(e *snapio.Encoder, m any) {
			h := m.(HelloMsg)
			e.I64(int64(h.From))
			e.Int(len(h.CacheDocs))
			for _, doc := range h.CacheDocs {
				e.I64(int64(doc))
			}
		},
		func(d *snapio.Decoder) any {
			h := HelloMsg{From: cnet.NodeID(d.I64())}
			if n := d.Count(1 << 24); n > 0 {
				h.CacheDocs = make([]trace.DocID, 0, n)
				for ; n > 0; n-- {
					h.CacheDocs = append(h.CacheDocs, trace.DocID(d.I64()))
				}
			}
			return h
		})
	c.Register("press.Fwd", (*FwdMsg)(nil),
		func(e *snapio.Encoder, m any) {
			r := m.(*FwdMsg)
			e.U64(r.ID)
			e.I64(int64(r.Doc))
			e.Int(r.Load)
			e.I64(int64(r.Origin))
		},
		func(d *snapio.Decoder) any {
			return &FwdMsg{ID: d.U64(), Doc: trace.DocID(d.I64()), Load: d.Int(), Origin: cnet.NodeID(d.I64())}
		})
	c.Register("press.FwdReply", (*FwdReplyMsg)(nil),
		func(e *snapio.Encoder, m any) {
			r := m.(*FwdReplyMsg)
			e.U64(r.ID)
			e.I64(int64(r.Doc))
			e.Bool(r.OK)
			e.Int(r.Load)
		},
		func(d *snapio.Decoder) any {
			return &FwdReplyMsg{ID: d.U64(), Doc: trace.DocID(d.I64()), OK: d.Bool(), Load: d.Int()}
		})
	c.Register("press.Announce", (*AnnounceMsg)(nil),
		func(e *snapio.Encoder, m any) {
			r := m.(*AnnounceMsg)
			e.I64(int64(r.From))
			e.I64(int64(r.Doc))
			e.Bool(r.Cached)
			e.Int(r.Load)
		},
		func(d *snapio.Decoder) any {
			return &AnnounceMsg{From: cnet.NodeID(d.I64()), Doc: trace.DocID(d.I64()), Cached: d.Bool(), Load: d.Int()}
		})
	c.Register("press.HB", (*HBMsg)(nil),
		func(e *snapio.Encoder, m any) {
			r := m.(*HBMsg)
			e.I64(int64(r.From))
			e.Int(r.Load)
		},
		func(d *snapio.Decoder) any {
			return &HBMsg{From: cnet.NodeID(d.I64()), Load: d.Int()}
		})
	c.Register("press.Exclude", ExcludeMsg{},
		func(e *snapio.Encoder, m any) {
			r := m.(ExcludeMsg)
			e.I64(int64(r.From))
			e.I64(int64(r.Dead))
		},
		func(d *snapio.Decoder) any {
			return ExcludeMsg{From: cnet.NodeID(d.I64()), Dead: cnet.NodeID(d.I64())}
		})
	c.Register("press.JoinReq", JoinReqMsg{},
		func(e *snapio.Encoder, m any) {
			e.I64(int64(m.(JoinReqMsg).From))
		},
		func(d *snapio.Decoder) any {
			return JoinReqMsg{From: cnet.NodeID(d.I64())}
		})
	c.Register("press.JoinResp", JoinRespMsg{},
		func(e *snapio.Encoder, m any) {
			r := m.(JoinRespMsg)
			e.I64(int64(r.From))
			encNodes(e, r.View)
		},
		func(d *snapio.Decoder) any {
			return JoinRespMsg{From: cnet.NodeID(d.I64()), View: decNodes(d)}
		})
}

func encNodes(e *snapio.Encoder, ns []cnet.NodeID) {
	e.Int(len(ns))
	for _, n := range ns {
		e.I64(int64(n))
	}
}

func decNodes(d *snapio.Decoder) []cnet.NodeID {
	n := d.Count(1 << 16)
	if n == 0 {
		return nil
	}
	out := make([]cnet.NodeID, 0, n)
	for ; n > 0; n-- {
		out = append(out, cnet.NodeID(d.I64()))
	}
	return out
}

// timerSerial extracts the proc-clock serial from a retained handle.
func timerSerial(h any, what string) uint64 {
	ts, ok := h.(interface{ TimerSerial() uint64 })
	if !ok {
		snapio.Failf("server: %s handle %T carries no timer serial", what, h)
	}
	return ts.TimerSerial()
}

func encConn(ctx *snapio.Ctx, c cnet.Conn) {
	ctx.Enc.Bool(c != nil)
	if c != nil {
		ctx.Enc.U64(ctx.Conns.Ref(c))
	}
}

func decConn(ctx *snapio.Ctx) cnet.Conn {
	if !ctx.Dec.Bool() {
		return nil
	}
	ref := ctx.Dec.U64()
	c, ok := ctx.Conns.Obj(ref).(cnet.Conn)
	if !ok {
		snapio.Failf("server: conn ref %d is not a conn", ref)
	}
	return c
}

func encTimer(e *snapio.Encoder, h any, what string) {
	e.Bool(h != nil)
	if h != nil {
		e.U64(timerSerial(h, what))
	}
}

// SaveState serializes the server. Pooled messages in queues are encoded
// by the message codec; retained timer handles by serial; connections as
// table references. Pending disk reads register their continuation
// records in ctx.Owners for the disk section, which saves later.
func (s *Server) SaveState(ctx *snapio.Ctx) {
	if s.qm != nil {
		snapio.Failf("server %d: snapshotting with queue monitoring is not supported yet", s.cfg.Self)
	}
	if s.memb != nil {
		snapio.Failf("server %d: snapshotting with a membership view is not supported yet", s.cfg.Self)
	}
	e := ctx.Enc
	e.Bool(s.joined)
	e.U64(s.nextID)
	e.Int(s.active)
	st := &s.stats
	for _, v := range []uint64{st.Served, st.LocalHits, st.RemoteServed, st.DiskReads,
		st.ForwardsOut, st.PeerServes, st.Rerouted, st.Excludes, st.Includes} {
		e.U64(v)
	}

	encNodes(e, s.sortedView())

	docs := s.cache.Docs()
	e.Int(len(docs))
	for _, doc := range docs {
		e.I64(int64(doc))
	}

	// The directory's word count is derived from cfg.Nodes on both ends,
	// so the layouts need no discriminator: one mask word per entry in
	// the faithful ≤64-node shape, s.dir.words in the wide shape.
	if s.dir.words > 1 {
		dirDocs := make([]trace.DocID, 0, len(s.dir.wide))
		for doc := range s.dir.wide {
			dirDocs = append(dirDocs, doc)
		}
		sort.Slice(dirDocs, func(i, j int) bool { return dirDocs[i] < dirDocs[j] })
		e.Int(len(dirDocs))
		for _, doc := range dirDocs {
			e.I64(int64(doc))
			for _, w := range s.dir.wide[doc] {
				e.U64(w)
			}
		}
	} else {
		dirDocs := make([]trace.DocID, 0, len(s.dir.bits))
		for doc := range s.dir.bits {
			dirDocs = append(dirDocs, doc)
		}
		sort.Slice(dirDocs, func(i, j int) bool { return dirDocs[i] < dirDocs[j] })
		e.Int(len(dirDocs))
		for _, doc := range dirDocs {
			e.I64(int64(doc))
			e.U64(s.dir.bits[doc])
		}
	}

	peerIDs := make([]cnet.NodeID, 0, len(s.peers))
	for n, p := range s.peers {
		if p != nil {
			peerIDs = append(peerIDs, cnet.NodeID(n))
		}
	}
	e.Int(len(peerIDs))
	for _, n := range peerIDs {
		p := s.peers[n]
		e.I64(int64(n))
		encConn(ctx, p.conn)
		e.Bool(p.dialing)
		encTimer(e, p.retry, "peer retry")
		e.Int(p.load)
		e.Int(p.qlen())
		for i := p.sendHead; i < len(p.sendQ); i++ {
			om := p.sendQ[i]
			ctx.Msgs.Encode(e, om.m)
			e.Int(om.size)
			e.Bool(om.isReq)
			e.U64(om.reqID)
		}
	}

	type inbound struct {
		ref  uint64
		node cnet.NodeID
	}
	ins := make([]inbound, 0, len(s.inboundFrom))
	for c, n := range s.inboundFrom {
		ins = append(ins, inbound{ctx.Conns.Ref(c), n})
	}
	sort.Slice(ins, func(i, j int) bool {
		if ins[i].node != ins[j].node {
			return ins[i].node < ins[j].node
		}
		return ins[i].ref < ins[j].ref
	})
	e.Int(len(ins))
	for _, in := range ins {
		e.U64(in.ref)
		e.I64(int64(in.node))
	}

	reqIDs := make([]uint64, 0, len(s.inflight))
	for id := range s.inflight {
		reqIDs = append(reqIDs, id)
	}
	sort.Slice(reqIDs, func(i, j int) bool { return reqIDs[i] < reqIDs[j] })
	e.Int(len(reqIDs))
	for _, id := range reqIDs {
		rs := s.inflight[id]
		e.U64(rs.id)
		e.I64(int64(rs.doc))
		encConn(ctx, rs.client)
		e.I64(int64(rs.forwardedTo))
		e.U64(rs.gen)
	}

	e.Int(s.QueuedAccepts())
	for i := s.acceptHead; i < len(s.acceptQ); i++ {
		encConn(ctx, s.acceptQ[i].conn)
		ctx.Msgs.Encode(e, s.acceptQ[i].msg)
	}

	e.Int(len(s.diskOps))
	for _, op := range s.diskOps {
		e.U64(ctx.Owners.Ref(op))
		e.I64(int64(op.doc))
		e.Bool(op.ok)
		e.Bool(op.peerServe)
		if op.peerServe {
			e.I64(int64(op.from))
			e.U64(op.id)
		} else {
			live := op.st != nil && op.st.gen == op.stGen
			e.Bool(live)
			if live {
				e.U64(op.st.id)
			}
			e.U64(op.stGen)
		}
		encTimer(e, op.bounceT, "disk bounce")
		encTimer(e, op.requeueT, "disk requeue")
	}

	e.Int(len(s.admitOps))
	for _, op := range s.admitOps {
		encConn(ctx, op.conn)
		ctx.Msgs.Encode(e, op.msg)
		encTimer(e, op.runT, "deferred admission")
	}

	r := &s.ring
	e.Bool(r.enabled)
	e.I64(int64(r.pred))
	e.I64(int64(r.succ))
	e.Dur(r.lastHB)
	if r.enabled {
		hb, ok := r.hb.(interface {
			Stopped() bool
			PendingTimer() clock.Timer
		})
		if !ok {
			snapio.Failf("server %d: ring ticker %T is not restorable", s.cfg.Self, r.hb)
		}
		e.Bool(hb.Stopped())
		encTimer(e, hb.PendingTimer(), "ring heartbeat")
	}

	encTimer(e, s.joinTimer, "join timeout")
}

// SaveHusk serializes the post-mortem observables of a dead incarnation.
// After an application crash the harness holder still points at the old
// *Server, and the driver's operator-reset and result-assembly paths read
// View() and SendQueueLen() from it; nothing else of the corpse is
// reachable. The husk carries exactly those observables plus the counters.
func (s *Server) SaveHusk(ctx *snapio.Ctx) {
	e := ctx.Enc
	st := &s.stats
	for _, v := range []uint64{st.Served, st.LocalHits, st.RemoteServed, st.DiskReads,
		st.ForwardsOut, st.PeerServes, st.Rerouted, st.Excludes, st.Includes} {
		e.U64(v)
	}
	encNodes(e, s.sortedView())
	peerIDs := make([]cnet.NodeID, 0, len(s.peers))
	for n, p := range s.peers {
		if p != nil {
			peerIDs = append(peerIDs, cnet.NodeID(n))
		}
	}
	e.Int(len(peerIDs))
	for _, n := range peerIDs {
		e.I64(int64(n))
		e.Int(s.peers[n].qlen())
	}
}

// RestoreHusk rebuilds the observable shell SaveHusk captured. The husk
// is inert — no environment, no listeners, no timers — it only answers
// the accessors a dead incarnation can still be asked.
func RestoreHusk(ctx *snapio.Ctx) *Server {
	d := ctx.Dec
	s := &Server{}
	st := &s.stats
	for _, f := range []*uint64{&st.Served, &st.LocalHits, &st.RemoteServed, &st.DiskReads,
		&st.ForwardsOut, &st.PeerServes, &st.Rerouted, &st.Excludes, &st.Includes} {
		*f = d.U64()
	}
	s.sorted = decNodes(d)
	for _, n := range s.sorted {
		s.viewAdd(n)
	}
	for k := d.Count(1 << 16); k > 0; k-- {
		n := cnet.NodeID(d.I64())
		s.setPeer(n, &peer{id: n, sendQ: make([]outMsg, d.Int())})
	}
	return s
}

// RestoreEnv is the process environment surface the restore path needs:
// the normal cnet.Env plus the machine's restore registrations (implemented
// by machine.Env during a restore; structural so this package does not
// import machine).
type RestoreEnv interface {
	cnet.Env
	RestoreTimer(serial uint64, fn func()) clock.Timer
	RestoreTicker(period time.Duration, fn func(), stopped bool) clock.Ticker
	RestoreDialer(to cnet.NodeID, port string, h cnet.StreamHandlers, result func(cnet.Conn, error))
	RestoreConn(c cnet.Conn, h cnet.StreamHandlers)
	RestoreConnList() []cnet.Conn
}

// decTimer restores a retained timer handle: nil when none was saved,
// otherwise re-claimed by serial (a live pending timer re-arms at its
// exact kernel slot; a spent or stopped one yields an inert handle).
func decTimer(d *snapio.Decoder, env RestoreEnv, fn func()) timerHandle {
	if !d.Bool() {
		return nil
	}
	return env.RestoreTimer(d.U64(), fn)
}

// Restore rebuilds a server from SaveState inside a snapshot restore:
// the constructed server re-registers its listeners on env (registration
// only — no events), loads its protocol state, re-attaches stream
// handlers to every restored connection, and re-claims its timers.
func Restore(cfg Config, env RestoreEnv, disk DiskArray, memb MembershipView, ctx *snapio.Ctx) *Server {
	if memb != nil {
		snapio.Failf("server: restoring with a membership view is not supported yet")
	}
	s := newServer(cfg, env, disk, memb)
	if s.qm != nil {
		snapio.Failf("server %d: restoring with queue monitoring is not supported yet", s.cfg.Self)
	}
	s.env.Listen(PortHTTP, s.acceptClient)
	if s.cfg.Cooperative {
		s.env.Listen(PortPress, s.acceptPeer)
		s.env.BindDatagram(PortControl, s.onControl)
		s.env.BindDatagram(PortHB, s.onHeartbeat)
	}

	d := ctx.Dec
	s.joined = d.Bool()
	s.nextID = d.U64()
	s.active = d.Int()
	st := &s.stats
	for _, f := range []*uint64{&st.Served, &st.LocalHits, &st.RemoteServed, &st.DiskReads,
		&st.ForwardsOut, &st.PeerServes, &st.Rerouted, &st.Excludes, &st.Includes} {
		*f = d.U64()
	}

	for _, n := range decNodes(d) {
		s.viewAdd(n)
	}

	nd := d.Count(1 << 24)
	docs := make([]trace.DocID, nd)
	for i := range docs {
		docs[i] = trace.DocID(d.I64())
	}
	// Docs listed MRU-first; inserting oldest-first reproduces the order.
	for i := len(docs) - 1; i >= 0; i-- {
		s.cache.Insert(docs[i])
	}

	if s.dir.words > 1 {
		for k := d.Count(1 << 24); k > 0; k-- {
			doc := trace.DocID(d.I64())
			mask := make([]uint64, s.dir.words)
			for i := range mask {
				mask[i] = d.U64()
			}
			s.dir.wide[doc] = mask
		}
	} else {
		for k := d.Count(1 << 24); k > 0; k-- {
			doc := trace.DocID(d.I64())
			s.dir.bits[doc] = d.U64()
		}
	}

	for k := d.Count(1 << 16); k > 0; k-- {
		p := s.peer(cnet.NodeID(d.I64()))
		p.conn = decConn(ctx)
		cnet.RetainConn(p.conn) // no-op on snapshot-built conns; keeps the pin balanced
		p.dialing = d.Bool()
		p.retry = decTimer(d, env, p.redial)
		p.load = d.Int()
		for q := d.Count(1 << 20); q > 0; q-- {
			om := outMsg{m: ctx.Msgs.Decode(d), size: d.Int(), isReq: d.Bool(), reqID: d.U64()}
			p.sendQ = append(p.sendQ, om)
			if om.isReq {
				p.reqInQ++
			}
		}
		if p.dialing {
			env.RestoreDialer(p.id, PortPress, p.h, p.onDial)
		}
	}

	for k := d.Count(1 << 16); k > 0; k-- {
		ref := d.U64()
		c, ok := ctx.Conns.Obj(ref).(cnet.Conn)
		if !ok {
			snapio.Failf("server: inbound conn ref %d is not a conn", ref)
		}
		s.inboundFrom[c] = cnet.NodeID(d.I64())
	}

	for k := d.Count(1 << 20); k > 0; k-- {
		rs := &reqState{
			id:          d.U64(),
			doc:         trace.DocID(d.I64()),
			client:      decConn(ctx),
			forwardedTo: cnet.NodeID(d.I64()),
			gen:         d.U64(),
		}
		s.inflight[rs.id] = rs
		if rs.client != nil {
			s.clientOf[rs.client] = rs.id
			cnet.RetainConn(rs.client) // no-op on snapshot-built conns; keeps the pin balanced with admit
		}
	}

	for k := d.Count(1 << 20); k > 0; k-- {
		pr := pendingReq{conn: decConn(ctx)}
		pr.msg, _ = ctx.Msgs.Decode(d).(*ReqMsg)
		s.acceptQ = append(s.acceptQ, pr)
	}

	for k := d.Count(1 << 20); k > 0; k-- {
		ownerID := d.U64()
		op := s.getDiskOp()
		op.doc = trace.DocID(d.I64())
		op.ok = d.Bool()
		op.peerServe = d.Bool()
		if op.peerServe {
			op.from = cnet.NodeID(d.I64())
			op.id = d.U64()
		} else {
			live := d.Bool()
			var liveID uint64
			if live {
				liveID = d.U64()
			}
			op.stGen = d.U64()
			if live {
				op.st = s.inflight[liveID]
				if op.st == nil {
					snapio.Failf("server %d: disk op for unknown request %d", s.cfg.Self, liveID)
				}
			} else {
				// The request died while the read was in flight: any state
				// with a newer generation reproduces the stale-guard path.
				op.st = &reqState{forwardedTo: cnet.None, gen: op.stGen + 1}
			}
		}
		op.bounceT = decTimer(d, env, op.bounce)
		op.requeueT = decTimer(d, env, op.requeue)
		ctx.Owners.Put(ownerID, op)
	}

	for k := d.Count(1 << 20); k > 0; k-- {
		op := s.getAdmitOp()
		op.conn = decConn(ctx)
		cnet.RetainConn(op.conn) // no-op on snapshot-built conns; keeps the pin balanced with putAdmitOp
		op.msg, _ = ctx.Msgs.Decode(d).(*ReqMsg)
		op.runT = decTimer(d, env, op.run)
	}

	r := &s.ring
	r.s = s
	r.enabled = d.Bool()
	r.pred = cnet.NodeID(d.I64())
	r.succ = cnet.NodeID(d.I64())
	r.lastHB = d.Dur()
	if r.enabled {
		stopped := d.Bool()
		hb := env.RestoreTicker(s.cfg.HeartbeatPeriod, r.tick, stopped)
		rt, ok := hb.(interface {
			FireFunc() func()
			AdoptTimer(clock.Timer)
		})
		if !ok {
			snapio.Failf("server %d: restored ring ticker %T lacks a timer-adoption surface", s.cfg.Self, hb)
		}
		if t := decTimer(d, env, rt.FireFunc()); t != nil {
			rt.AdoptTimer(t)
		}
		r.hb = hb
	}

	s.joinTimer = decTimer(d, env, s.joinTimeout)

	// Re-attach stream handlers to every connection the process carried
	// across the snapshot: inbound peer streams get the shared peer
	// handlers, established outbound peer streams each peer's own, and
	// everything else is a client connection.
	peerConns := make(map[cnet.Conn]*peer, len(s.peers))
	for _, p := range s.peers {
		if p != nil && p.conn != nil {
			peerConns[p.conn] = p
		}
	}
	for _, c := range env.RestoreConnList() {
		switch {
		case peerConns[c] != nil:
			env.RestoreConn(c, peerConns[c].h)
		default:
			if n, inbound := s.inboundFrom[c]; inbound {
				env.RestoreConn(c, s.inboundHandlers(&inPeer{from: n, known: true}))
			} else {
				env.RestoreConn(c, s.clientH)
			}
		}
	}
	return s
}
