package server

import (
	"fmt"
	"sort"

	"press/internal/cnet"
	"press/internal/metrics"
	"press/internal/qmon"
	"press/internal/trace"
)

// Stats counts server-side work; the availability figures are measured at
// the clients, these are for tests and diagnostics.
type Stats struct {
	Served       uint64 // responses sent to clients
	LocalHits    uint64 // served from the local cache
	RemoteServed uint64 // served via a peer's cache/disk
	DiskReads    uint64 // local disk reads completed
	ForwardsOut  uint64 // requests forwarded to peers
	PeerServes   uint64 // forwarded requests served for peers
	Rerouted     uint64 // requests rerouted away from overloaded peers
	Excludes     uint64
	Includes     uint64
}

// Server is one PRESS process.
type Server struct {
	cfg Config
	env cnet.Env
	src metrics.SourceID // interned "press/<self>" tag
	// ringMissDetail is the ring detector's constant detect reason,
	// formatted once here instead of per detection.
	ringMissDetail string
	disk           DiskArray
	memb           MembershipView
	qm             *qmon.Monitor

	cache *docCache
	dir   *directory

	// view and peers are dense by NodeID (server IDs are small ints):
	// membership tests and peer lookups run on every routed request, and
	// at 256 nodes the map hashing alone dominated the routing cost.
	view     []bool        // view[n] ⇔ n is in the cooperation set (self included)
	sorted   []cnet.NodeID //availlint:skipfield sorted cached sorted view, rebuilt on demand from view
	sortedOK bool          //availlint:skipfield sortedOK validity of the sorted cache, recomputed on demand
	peers    []*peer       // nil entry: no plumbing towards that node yet
	joined   bool

	active      int
	acceptQ     []pendingReq
	acceptHead  int // consumed prefix of acceptQ (popped without re-slicing)
	nextID      uint64
	inflight    map[uint64]*reqState
	clientOf    map[cnet.Conn]uint64
	inboundFrom map[cnet.Conn]cnet.NodeID

	// Hot-path recycling: the handler sets are built once per server, and
	// the per-request records (request state, disk continuations, deferred
	// admissions) cycle through free lists instead of being re-allocated
	// for every request.
	clientH   cnet.StreamHandlers
	reqFree   []*reqState
	diskFree  []*diskOp
	admitFree []*admitOp

	// Live pooled continuations, indexed by their slot fields so snapshots
	// can enumerate in-flight work deterministically.
	diskOps  []*diskOp
	admitOps []*admitOp

	// diskTag, when the disk subsystem supports it, tags every Read and
	// NotifySpace with the owning diskOp for snapshot identity.
	diskTag interface{ SetNextOwner(owner any) }

	// Per-send message pools (see messages.go): the final consumer
	// releases each record back to its sender's pool.
	respPool   cnet.MsgPool[RespMsg]
	fwdPool    cnet.MsgPool[FwdMsg]
	fwdRepPool cnet.MsgPool[FwdReplyMsg]
	annPool    cnet.MsgPool[AnnounceMsg]
	hbPool     cnet.MsgPool[HBMsg]

	ring  ringDetector
	stats Stats

	joinTimer timerHandle
}

type timerHandle interface{ Stop() bool }

type pendingReq struct {
	conn cnet.Conn
	msg  *ReqMsg
}

type reqState struct {
	id          uint64
	doc         trace.DocID
	client      cnet.Conn
	forwardedTo cnet.NodeID
	gen         uint64 // bumped on release; guards stale disk continuations
}

// New constructs and starts a PRESS server process on env. memb may be
// nil (no external membership service); disk must serve every document.
func New(cfg Config, env cnet.Env, disk DiskArray, memb MembershipView) *Server {
	s := newServer(cfg, env, disk, memb)
	s.start()
	return s
}

// newServer builds the server without starting it (no listens, no
// timers, no join protocol) — shared by New and the snapshot Restore
// path.
func newServer(cfg Config, env cnet.Env, disk DiskArray, memb MembershipView) *Server {
	cfg = cfg.withDefaults()
	s := &Server{
		cfg:            cfg,
		env:            env,
		src:            metrics.InternSource(fmt.Sprintf("press/%d", cfg.Self)),
		ringMissDetail: fmt.Sprintf("ring: %d heartbeats missed", cfg.HeartbeatMiss),
		disk:           disk,
		memb:           memb,
		cache:          newDocCache(cfg.Catalog.DocsFitting(cfg.CacheBytes), cfg.Catalog.Docs),
		dir:            newDirectory(cfg.Nodes),
		inflight:       make(map[uint64]*reqState),
		clientOf:       make(map[cnet.Conn]uint64),
		inboundFrom:    make(map[cnet.Conn]cnet.NodeID),
	}
	s.viewAdd(cfg.Self)
	s.clientH = cnet.StreamHandlers{OnMessage: s.onClientMsg, OnClose: s.onClientClose}
	if cfg.QMon != nil {
		s.qm = qmon.New(*cfg.QMon, qmon.Callbacks{
			OnReroute: func(p cnet.NodeID) {
				s.emit(metrics.KQMonReroute, int(p), "queue overloaded")
			},
			OnFail: func(p cnet.NodeID) {
				s.emit(metrics.KQMonFail, int(p), "queue threshold crossed")
				s.emitDetect(int(p), "qmon")
				s.exclude(p, "qmon")
			},
		}, env.Rand())
	}
	if dt, ok := disk.(interface{ SetNextOwner(owner any) }); ok {
		s.diskTag = dt
	}
	return s
}

func (s *Server) start() {
	s.env.Listen(PortHTTP, s.acceptClient)
	if !s.cfg.Cooperative {
		s.joined = true
		s.emit(metrics.KServerUp, int(s.cfg.Self), "independent")
		return
	}
	s.env.Listen(PortPress, s.acceptPeer)
	s.env.BindDatagram(PortControl, s.onControl)
	s.env.BindDatagram(PortHB, s.onHeartbeat)
	s.ring.init(s)

	// Rejoin protocol (§3): broadcast our identity; the lowest-ID active
	// member answers with the current configuration. If nobody answers
	// within JoinTimeout this is a cold start and the static configuration
	// is adopted.
	for _, n := range s.cfg.Nodes {
		if n != s.cfg.Self {
			s.env.Send(n, cnet.ClassIntra, PortControl, JoinReqMsg{From: s.cfg.Self}, sizeControl)
		}
	}
	s.joinTimer = s.env.Clock().AfterFunc(s.cfg.JoinTimeout, s.joinTimeout)

	if s.memb != nil {
		s.memb.Subscribe(s.reconcileMembership)
	}
	s.emit(metrics.KServerUp, int(s.cfg.Self), "cooperative")
}

// joinTimeout fires when no member answered the rejoin broadcast: this
// is a cold start and the static configuration is adopted.
func (s *Server) joinTimeout() {
	if s.joined {
		return
	}
	s.adoptView(s.cfg.Nodes, "cold start")
}

// adoptView installs a full view at join time.
func (s *Server) adoptView(nodes []cnet.NodeID, why string) {
	s.joined = true
	if s.joinTimer != nil {
		s.joinTimer.Stop()
	}
	for _, n := range nodes {
		if n != s.cfg.Self && !s.inView(n) {
			s.include(n, why)
		}
	}
}

// inView reports n's cooperation-set membership — the hottest predicate
// in routing, so it must stay a bounds check and a load.
func (s *Server) inView(n cnet.NodeID) bool {
	return n >= 0 && int(n) < len(s.view) && s.view[n]
}

func (s *Server) viewAdd(n cnet.NodeID) {
	if n < 0 {
		return
	}
	if int(n) >= len(s.view) {
		grown := make([]bool, int(n)+1)
		copy(grown, s.view)
		s.view = grown
	}
	s.view[n] = true
}

func (s *Server) viewDel(n cnet.NodeID) {
	if n >= 0 && int(n) < len(s.view) {
		s.view[n] = false
	}
}

// Sorted view (self included).
func (s *Server) sortedView() []cnet.NodeID {
	if !s.sortedOK {
		// Reuse the backing array: view changes are frequent during ramp
		// (every include on every node), and a fresh allocation per change
		// is pure GC load. Callers use the slice before the next change.
		// The dense walk yields ascending IDs, so no sort is needed.
		s.sorted = s.sorted[:0]
		for n, in := range s.view {
			if in {
				s.sorted = append(s.sorted, cnet.NodeID(n))
			}
		}
		s.sortedOK = true
	}
	return s.sorted
}

func (s *Server) viewChanged() {
	s.sortedOK = false
	s.ring.recompute()
}

// View returns the current cooperation set, sorted, self included.
func (s *Server) View() []cnet.NodeID {
	out := make([]cnet.NodeID, len(s.sortedView()))
	copy(out, s.sortedView())
	return out
}

// Active returns the number of requests currently holding service slots.
func (s *Server) Active() int { return s.active }

// QueuedAccepts returns requests waiting for a slot.
func (s *Server) QueuedAccepts() int { return len(s.acceptQ) - s.acceptHead }

// Stats returns a copy of the server counters.
func (s *Server) Stats() Stats { return s.stats }

// CacheLen returns the number of locally cached documents.
func (s *Server) CacheLen() int { return s.cache.Len() }

// Joined reports whether the join protocol completed.
func (s *Server) Joined() bool { return s.joined }

// SendQueueLen reports the send-queue length towards peer (tests).
func (s *Server) SendQueueLen(n cnet.NodeID) int {
	if p := s.peerAt(n); p != nil {
		return p.qlen()
	}
	return 0
}

// include admits n to the cooperation set (NodeIn).
func (s *Server) include(n cnet.NodeID, why string) {
	if n == s.cfg.Self || s.inView(n) {
		return
	}
	s.viewAdd(n)
	s.viewChanged()
	s.stats.Includes++
	if s.qm != nil {
		s.qm.ClearFailed(n)
	}
	s.emit(metrics.KInclude, int(n), why)
	s.connectPeer(n)
}

// exclude removes n from the cooperation set (NodeOut) and reroutes its
// pending work.
func (s *Server) exclude(n cnet.NodeID, why string) {
	if n == s.cfg.Self || !s.inView(n) {
		return
	}
	s.viewDel(n)
	s.viewChanged()
	s.stats.Excludes++
	s.emit(metrics.KExclude, int(n), why)
	s.dir.DropNode(n)
	if s.qm != nil {
		s.qm.Forget(n)
	}
	if p := s.peerAt(n); p != nil {
		p.teardown()
	}
	// Requests forwarded to n — still queued or already sent and awaiting
	// a reply — are rerouted ("to other cooperative peers or the disk
	// queue"). Queued ones are covered here too: forward() stamps
	// forwardedTo before enqueueing.
	var requeue []uint64
	for id, st := range s.inflight {
		if st.forwardedTo == n {
			requeue = append(requeue, id)
		}
	}
	sort.Slice(requeue, func(i, j int) bool { return requeue[i] < requeue[j] })
	for _, id := range requeue {
		st := s.inflight[id]
		if st == nil {
			continue
		}
		st.forwardedTo = cnet.None
		s.route(st)
	}
}

// reconcileMembership folds the external membership view into the
// cooperation set. It runs on every poll of the published view, so a peer
// excluded by queue monitoring but still in the membership group is
// re-admitted here — the conflicting-recovery seam of §4.4.
func (s *Server) reconcileMembership(members []cnet.NodeID) {
	if !s.joined {
		s.joined = true
		if s.joinTimer != nil {
			s.joinTimer.Stop()
		}
	}
	in := make(map[cnet.NodeID]bool, len(members))
	for _, n := range members {
		in[n] = true
	}
	// Collect first, exclude after: exclude() re-derives the ring, which
	// rebuilds the sorted-view cache in place under this iteration.
	var drop []cnet.NodeID
	for _, n := range s.sortedView() {
		if n != s.cfg.Self && !in[n] {
			drop = append(drop, n)
		}
	}
	for _, n := range drop {
		s.exclude(n, "membership NodeOut")
	}
	static := make(map[cnet.NodeID]bool, len(s.cfg.Nodes))
	for _, n := range s.cfg.Nodes {
		static[n] = true
	}
	for _, n := range members {
		if n != s.cfg.Self && static[n] && !s.inView(n) {
			s.include(n, "membership NodeIn")
		}
	}
}

// onControl handles the join protocol and exclude broadcasts.
func (s *Server) onControl(from cnet.NodeID, m cnet.Message) {
	s.env.Charge(s.cfg.Cost.Control)
	switch msg := m.(type) {
	case JoinReqMsg:
		if !s.joined {
			return
		}
		// Lowest-ID active member answers with the configuration.
		if s.sortedView()[0] != s.cfg.Self {
			return
		}
		resp := JoinRespMsg{From: s.cfg.Self, View: s.View()}
		s.env.Send(msg.From, cnet.ClassIntra, PortControl, resp, sizeControl+4*len(resp.View))
	case JoinRespMsg:
		if s.joined {
			return
		}
		s.adoptView(append(msg.View, msg.From), "join response")
	case ExcludeMsg:
		if msg.Dead == s.cfg.Self {
			return // we are apparently dead to them; splinter, do nothing
		}
		if !s.inView(msg.From) {
			// Exclusion claims from outside our cooperation set are stale
			// ring state — e.g. a node that just thawed from a freeze and
			// thinks everyone else missed its heartbeats.
			return
		}
		if s.inView(msg.Dead) {
			s.exclude(msg.Dead, fmt.Sprintf("ring broadcast from %d", msg.From))
		}
	case *AnnounceMsg:
		if s.inView(msg.From) {
			s.dir.Set(msg.From, msg.Doc, msg.Cached)
			s.peerLoad(msg.From, msg.Load)
		}
		msg.Release()
	}
}

func (s *Server) emit(kind metrics.KindID, node int, detail string) {
	s.env.Events().EmitID(s.env.Clock().Now(), s.src, kind, node, detail)
}

func (s *Server) emitDetect(node int, by string) {
	s.env.Events().EmitID(s.env.Clock().Now(), s.src, metrics.KDetect, node, by)
}

// shardOwner is the document's home node under hash placement — the
// same mod-N rule pickService's fallback uses, so in the sharded
// protocol the directory authority and the miss target coincide.
func (s *Server) shardOwner(doc trace.DocID) cnet.NodeID {
	view := s.sortedView()
	return view[int(doc)%len(view)]
}

// announce publishes a caching decision. The faithful protocol
// broadcasts it to the whole cooperation set; the sharded protocol
// sends one message to the document's home node, which becomes the
// directory authority for that shard (an owner's own decisions need no
// message — its local cache is consulted before the directory). Each
// destination gets its own pooled record — the receivers release
// independently, so one record must never be shared across sends.
func (s *Server) announce(doc trace.DocID, cached bool) {
	if s.cfg.Sharded {
		owner := s.shardOwner(doc)
		if owner == s.cfg.Self {
			return
		}
		m := NewAnnounceMsg(&s.annPool)
		m.From, m.Doc, m.Cached, m.Load = s.cfg.Self, doc, cached, s.active
		s.env.Send(owner, cnet.ClassIntra, PortControl, m, sizeControl)
		return
	}
	for _, n := range s.sortedView() {
		if n != s.cfg.Self {
			m := NewAnnounceMsg(&s.annPool)
			m.From, m.Doc, m.Cached, m.Load = s.cfg.Self, doc, cached, s.active
			s.env.Send(n, cnet.ClassIntra, PortControl, m, sizeControl)
		}
	}
}
