package server

import (
	"press/internal/cnet"
	"press/internal/trace"
)

// cacheEnt is one intrusive LRU node. Entries are allocated only while
// the cache fills; at capacity the evicted entry is re-stamped for the
// incoming document, so a steady-state insert allocates nothing.
type cacheEnt struct {
	doc        trace.DocID
	prev, next *cacheEnt
}

// docCache is the per-node LRU file cache. All documents are uniform-size
// (the paper's modified trace), so capacity is simply a document count.
type docCache struct {
	cap   int
	n     int
	root  cacheEnt // sentinel: root.next = most recent, root.prev = oldest
	index map[trace.DocID]*cacheEnt
}

func newDocCache(capDocs int) *docCache {
	if capDocs < 1 {
		capDocs = 1
	}
	c := &docCache{cap: capDocs, index: make(map[trace.DocID]*cacheEnt, capDocs)}
	c.root.prev, c.root.next = &c.root, &c.root
	return c
}

func (c *docCache) pushFront(e *cacheEnt) {
	e.prev = &c.root
	e.next = c.root.next
	e.prev.next = e
	e.next.prev = e
}

func (c *docCache) moveToFront(e *cacheEnt) {
	if c.root.next == e {
		return
	}
	e.prev.next = e.next
	e.next.prev = e.prev
	c.pushFront(e)
}

// Has reports whether doc is cached, refreshing its recency on a hit.
func (c *docCache) Has(doc trace.DocID) bool {
	e, ok := c.index[doc]
	if ok {
		c.moveToFront(e)
	}
	return ok
}

// Peek reports presence without touching recency.
func (c *docCache) Peek(doc trace.DocID) bool {
	_, ok := c.index[doc]
	return ok
}

// Insert caches doc, returning the evicted document (and true) when the
// cache was full. Inserting a present doc only refreshes recency.
func (c *docCache) Insert(doc trace.DocID) (evicted trace.DocID, didEvict bool) {
	if e, ok := c.index[doc]; ok {
		c.moveToFront(e)
		return 0, false
	}
	if c.n >= c.cap {
		e := c.root.prev // oldest
		evicted = e.doc
		delete(c.index, evicted)
		e.doc = doc
		c.index[doc] = e
		c.moveToFront(e)
		return evicted, true
	}
	e := &cacheEnt{doc: doc}
	c.n++
	c.index[doc] = e
	c.pushFront(e)
	return 0, false
}

// Len returns the number of cached documents.
func (c *docCache) Len() int { return c.n }

// Docs lists the cached documents, most recent first. Used to seed a
// peer's directory on (re)connection.
func (c *docCache) Docs() []trace.DocID {
	out := make([]trace.DocID, 0, c.n)
	for e := c.root.next; e != &c.root; e = e.next {
		out = append(out, e.doc)
	}
	return out
}

// directory tracks which cluster nodes cache which documents, fed by
// broadcast announcements and Hello exchanges. Node sets are bitmasks
// indexed by position in the static node list (clusters in this repo are
// well under 64 nodes).
type directory struct {
	bits map[trace.DocID]uint64
	idx  map[cnet.NodeID]uint // NodeID -> bit position
}

func newDirectory(nodes []cnet.NodeID) *directory {
	d := &directory{bits: make(map[trace.DocID]uint64), idx: make(map[cnet.NodeID]uint)}
	for i, n := range nodes {
		d.idx[n] = uint(i)
	}
	return d
}

// Set records (or clears) that node caches doc.
func (d *directory) Set(node cnet.NodeID, doc trace.DocID, cached bool) {
	bit, ok := d.idx[node]
	if !ok {
		return
	}
	if cached {
		d.bits[doc] |= 1 << bit
		return
	}
	d.bits[doc] &^= 1 << bit
	if d.bits[doc] == 0 {
		delete(d.bits, doc)
	}
}

// Holders returns the nodes (from candidates) recorded as caching doc.
// Holds reports whether node n is recorded as caching doc — the
// allocation-free per-candidate form of Holders for the routing hot path.
func (d *directory) Holds(doc trace.DocID, n cnet.NodeID) bool {
	mask := d.bits[doc]
	if mask == 0 {
		return false
	}
	bit, ok := d.idx[n]
	return ok && mask&(1<<bit) != 0
}

func (d *directory) Holders(doc trace.DocID, candidates []cnet.NodeID) []cnet.NodeID {
	mask := d.bits[doc]
	if mask == 0 {
		return nil
	}
	var out []cnet.NodeID
	for _, n := range candidates {
		if bit, ok := d.idx[n]; ok && mask&(1<<bit) != 0 {
			out = append(out, n)
		}
	}
	return out
}

// DropNode forgets everything recorded about a node (it left the set).
func (d *directory) DropNode(node cnet.NodeID) {
	bit, ok := d.idx[node]
	if !ok {
		return
	}
	for doc, mask := range d.bits {
		mask &^= 1 << bit
		if mask == 0 {
			delete(d.bits, doc)
		} else {
			d.bits[doc] = mask
		}
	}
}

// Entries returns the number of documents with at least one holder.
func (d *directory) Entries() int { return len(d.bits) }
