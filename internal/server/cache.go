package server

import (
	mbits "math/bits"

	"press/internal/cnet"
	"press/internal/trace"
)

// cacheEnt is one intrusive LRU node. Entries are allocated only while
// the cache fills; at capacity the evicted entry is re-stamped for the
// incoming document, so a steady-state insert allocates nothing.
type cacheEnt struct {
	doc        trace.DocID
	prev, next *cacheEnt
}

// docCache is the per-node LRU file cache. All documents are uniform-size
// (the paper's modified trace), so capacity is simply a document count.
type docCache struct {
	cap  int
	n    int
	root cacheEnt // sentinel: root.next = most recent, root.prev = oldest
	// index is dense by DocID — catalog documents are numbered from zero,
	// so presence is one bounds check and one load on the hottest path in
	// the whole model (every request starts with Has). Grown on demand
	// for out-of-catalog IDs (tests).
	index []*cacheEnt
}

func newDocCache(capDocs, totalDocs int) *docCache {
	if capDocs < 1 {
		capDocs = 1
	}
	c := &docCache{cap: capDocs, index: make([]*cacheEnt, totalDocs)}
	c.root.prev, c.root.next = &c.root, &c.root
	return c
}

// ent returns doc's LRU entry, nil when not cached.
func (c *docCache) ent(doc trace.DocID) *cacheEnt {
	if int(doc) >= len(c.index) || doc < 0 {
		return nil
	}
	return c.index[doc]
}

// grow widens the index to cover doc.
func (c *docCache) grow(doc trace.DocID) {
	if int(doc) >= len(c.index) {
		grown := make([]*cacheEnt, int(doc)+1)
		copy(grown, c.index)
		c.index = grown
	}
}

func (c *docCache) pushFront(e *cacheEnt) {
	e.prev = &c.root
	e.next = c.root.next
	e.prev.next = e
	e.next.prev = e
}

func (c *docCache) moveToFront(e *cacheEnt) {
	if c.root.next == e {
		return
	}
	e.prev.next = e.next
	e.next.prev = e.prev
	c.pushFront(e)
}

// Has reports whether doc is cached, refreshing its recency on a hit.
func (c *docCache) Has(doc trace.DocID) bool {
	e := c.ent(doc)
	if e != nil {
		c.moveToFront(e)
	}
	return e != nil
}

// Peek reports presence without touching recency.
func (c *docCache) Peek(doc trace.DocID) bool {
	return c.ent(doc) != nil
}

// Insert caches doc, returning the evicted document (and true) when the
// cache was full. Inserting a present doc only refreshes recency.
func (c *docCache) Insert(doc trace.DocID) (evicted trace.DocID, didEvict bool) {
	if e := c.ent(doc); e != nil {
		c.moveToFront(e)
		return 0, false
	}
	c.grow(doc)
	if c.n >= c.cap {
		e := c.root.prev // oldest
		evicted = e.doc
		c.index[evicted] = nil
		e.doc = doc
		c.index[doc] = e
		c.moveToFront(e)
		return evicted, true
	}
	e := &cacheEnt{doc: doc}
	c.n++
	c.index[doc] = e
	c.pushFront(e)
	return 0, false
}

// Len returns the number of cached documents.
func (c *docCache) Len() int { return c.n }

// Docs lists the cached documents, most recent first. Used to seed a
// peer's directory on (re)connection.
func (c *docCache) Docs() []trace.DocID {
	out := make([]trace.DocID, 0, c.n)
	for e := c.root.next; e != &c.root; e = e.next {
		out = append(out, e.doc)
	}
	return out
}

// directory tracks which cluster nodes cache which documents, fed by
// broadcast announcements and Hello exchanges. Node sets are bitmasks
// indexed by position in the static node list. Clusters up to 64 nodes
// use one word per document (the faithful layout, unchanged down to the
// snapshot bytes); larger clusters spill into multi-word masks.
type directory struct {
	bits  map[trace.DocID]uint64
	wide  map[trace.DocID][]uint64 // multi-word masks; used iff words > 1
	words int
	idx   map[cnet.NodeID]uint //availlint:skipfield idx static bit-position table, rebuilt by the constructor
	nodes []cnet.NodeID        //availlint:skipfield nodes static bit-position table, rebuilt by the constructor
}

func newDirectory(nodes []cnet.NodeID) *directory {
	d := &directory{
		idx:   make(map[cnet.NodeID]uint),
		nodes: append([]cnet.NodeID(nil), nodes...),
	}
	for i, n := range nodes {
		d.idx[n] = uint(i)
	}
	d.words = (len(nodes) + 63) / 64
	if d.words <= 1 {
		d.words = 1
		d.bits = make(map[trace.DocID]uint64)
	} else {
		d.wide = make(map[trace.DocID][]uint64)
	}
	return d
}

// Set records (or clears) that node caches doc.
func (d *directory) Set(node cnet.NodeID, doc trace.DocID, cached bool) {
	bit, ok := d.idx[node]
	if !ok {
		return
	}
	if d.words > 1 {
		mask := d.wide[doc]
		if cached {
			if mask == nil {
				mask = make([]uint64, d.words)
				d.wide[doc] = mask
			}
			mask[bit/64] |= 1 << (bit % 64)
			return
		}
		if mask == nil {
			return
		}
		mask[bit/64] &^= 1 << (bit % 64)
		for _, w := range mask {
			if w != 0 {
				return
			}
		}
		delete(d.wide, doc)
		return
	}
	if cached {
		d.bits[doc] |= 1 << bit
		return
	}
	d.bits[doc] &^= 1 << bit
	if d.bits[doc] == 0 {
		delete(d.bits, doc)
	}
}

// Holders returns the nodes (from candidates) recorded as caching doc.
// Holds reports whether node n is recorded as caching doc — the
// allocation-free per-candidate form of Holders for the routing hot path.
func (d *directory) Holds(doc trace.DocID, n cnet.NodeID) bool {
	bit, ok := d.idx[n]
	if !ok {
		return false
	}
	if d.words > 1 {
		mask := d.wide[doc]
		return mask != nil && mask[bit/64]&(1<<(bit%64)) != 0
	}
	mask := d.bits[doc]
	return mask&(1<<bit) != 0
}

// eachHolder calls fn for every node recorded as caching doc, in
// ascending bit (= static node list) order. One mask fetch serves the
// whole scan, so the routing hot path costs O(holders) instead of the
// O(cluster) per-candidate Holds probing — the difference between flat
// and collapsing throughput at 256 nodes.
func (d *directory) eachHolder(doc trace.DocID, fn func(cnet.NodeID)) {
	if d.words > 1 {
		for wi, w := range d.wide[doc] {
			for w != 0 {
				b := wi*64 + mbits.TrailingZeros64(w)
				w &= w - 1
				fn(d.nodes[b])
			}
		}
		return
	}
	w := d.bits[doc]
	for w != 0 {
		b := mbits.TrailingZeros64(w)
		w &= w - 1
		fn(d.nodes[b])
	}
}

func (d *directory) Holders(doc trace.DocID, candidates []cnet.NodeID) []cnet.NodeID {
	var out []cnet.NodeID
	for _, n := range candidates {
		if d.Holds(doc, n) {
			out = append(out, n)
		}
	}
	return out
}

// DropNode forgets everything recorded about a node (it left the set).
func (d *directory) DropNode(node cnet.NodeID) {
	bit, ok := d.idx[node]
	if !ok {
		return
	}
	if d.words > 1 {
		for doc, mask := range d.wide {
			mask[bit/64] &^= 1 << (bit % 64)
			empty := true
			for _, w := range mask {
				if w != 0 {
					empty = false
					break
				}
			}
			if empty {
				delete(d.wide, doc)
			}
		}
		return
	}
	for doc, mask := range d.bits {
		mask &^= 1 << bit
		if mask == 0 {
			delete(d.bits, doc)
		} else {
			d.bits[doc] = mask
		}
	}
}

// Entries returns the number of documents with at least one holder.
func (d *directory) Entries() int {
	if d.words > 1 {
		return len(d.wide)
	}
	return len(d.bits)
}
