package server

import (
	"container/list"

	"press/internal/cnet"
	"press/internal/trace"
)

// docCache is the per-node LRU file cache. All documents are uniform-size
// (the paper's modified trace), so capacity is simply a document count.
type docCache struct {
	cap   int
	order *list.List // front = most recent
	index map[trace.DocID]*list.Element
}

func newDocCache(capDocs int) *docCache {
	if capDocs < 1 {
		capDocs = 1
	}
	return &docCache{cap: capDocs, order: list.New(), index: make(map[trace.DocID]*list.Element)}
}

// Has reports whether doc is cached, refreshing its recency on a hit.
func (c *docCache) Has(doc trace.DocID) bool {
	el, ok := c.index[doc]
	if ok {
		c.order.MoveToFront(el)
	}
	return ok
}

// Peek reports presence without touching recency.
func (c *docCache) Peek(doc trace.DocID) bool {
	_, ok := c.index[doc]
	return ok
}

// Insert caches doc, returning the evicted document (and true) when the
// cache was full. Inserting a present doc only refreshes recency.
func (c *docCache) Insert(doc trace.DocID) (evicted trace.DocID, didEvict bool) {
	if el, ok := c.index[doc]; ok {
		c.order.MoveToFront(el)
		return 0, false
	}
	if c.order.Len() >= c.cap {
		back := c.order.Back()
		evicted = back.Value.(trace.DocID)
		c.order.Remove(back)
		delete(c.index, evicted)
		didEvict = true
	}
	c.index[doc] = c.order.PushFront(doc)
	return evicted, didEvict
}

// Len returns the number of cached documents.
func (c *docCache) Len() int { return c.order.Len() }

// Docs lists the cached documents, most recent first. Used to seed a
// peer's directory on (re)connection.
func (c *docCache) Docs() []trace.DocID {
	out := make([]trace.DocID, 0, c.order.Len())
	for el := c.order.Front(); el != nil; el = el.Next() {
		out = append(out, el.Value.(trace.DocID))
	}
	return out
}

// directory tracks which cluster nodes cache which documents, fed by
// broadcast announcements and Hello exchanges. Node sets are bitmasks
// indexed by position in the static node list (clusters in this repo are
// well under 64 nodes).
type directory struct {
	bits map[trace.DocID]uint64
	idx  map[cnet.NodeID]uint // NodeID -> bit position
}

func newDirectory(nodes []cnet.NodeID) *directory {
	d := &directory{bits: make(map[trace.DocID]uint64), idx: make(map[cnet.NodeID]uint)}
	for i, n := range nodes {
		d.idx[n] = uint(i)
	}
	return d
}

// Set records (or clears) that node caches doc.
func (d *directory) Set(node cnet.NodeID, doc trace.DocID, cached bool) {
	bit, ok := d.idx[node]
	if !ok {
		return
	}
	if cached {
		d.bits[doc] |= 1 << bit
		return
	}
	d.bits[doc] &^= 1 << bit
	if d.bits[doc] == 0 {
		delete(d.bits, doc)
	}
}

// Holders returns the nodes (from candidates) recorded as caching doc.
func (d *directory) Holders(doc trace.DocID, candidates []cnet.NodeID) []cnet.NodeID {
	mask := d.bits[doc]
	if mask == 0 {
		return nil
	}
	var out []cnet.NodeID
	for _, n := range candidates {
		if bit, ok := d.idx[n]; ok && mask&(1<<bit) != 0 {
			out = append(out, n)
		}
	}
	return out
}

// DropNode forgets everything recorded about a node (it left the set).
func (d *directory) DropNode(node cnet.NodeID) {
	bit, ok := d.idx[node]
	if !ok {
		return
	}
	for doc, mask := range d.bits {
		mask &^= 1 << bit
		if mask == 0 {
			delete(d.bits, doc)
		} else {
			d.bits[doc] = mask
		}
	}
}

// Entries returns the number of documents with at least one holder.
func (d *directory) Entries() int { return len(d.bits) }
