package server

import (
	"math/rand"
	"testing"

	"press/internal/cnet"
	"press/internal/trace"
)

// wideNodes returns an n-node ID list, n chosen to exercise the
// multi-word directory masks (n > 64).
func wideNodes(n int) []cnet.NodeID {
	ids := make([]cnet.NodeID, n)
	for i := range ids {
		ids[i] = cnet.NodeID(i)
	}
	return ids
}

func TestDirectoryWideSetAndHolders(t *testing.T) {
	nodes := wideNodes(100)
	d := newDirectory(nodes)
	if d.words != 2 {
		t.Fatalf("words = %d for 100 nodes, want 2", d.words)
	}
	// Holders across both words: bits 3, 63, 64, 99.
	for _, n := range []cnet.NodeID{3, 63, 64, 99} {
		d.Set(n, 7, true)
	}
	for _, n := range []cnet.NodeID{3, 63, 64, 99} {
		if !d.Holds(7, n) {
			t.Fatalf("node %d not recorded as holder", n)
		}
	}
	if d.Holds(7, 65) || d.Holds(8, 3) {
		t.Fatal("phantom holder recorded")
	}
	if got := d.Holders(7, nodes); len(got) != 4 {
		t.Fatalf("Holders = %v, want 4 nodes", got)
	}
	// Clearing the last holder of a doc must delete its entry.
	for _, n := range []cnet.NodeID{3, 63, 64, 99} {
		d.Set(n, 7, false)
	}
	if d.Entries() != 0 {
		t.Fatalf("Entries = %d after clearing all holders, want 0", d.Entries())
	}
}

func TestDirectoryWideDropNode(t *testing.T) {
	d := newDirectory(wideNodes(130))
	d.Set(64, 1, true) // second word
	d.Set(129, 1, true)
	d.Set(64, 2, true) // sole holder
	d.DropNode(64)
	if d.Holds(1, 64) {
		t.Fatal("dropped node still recorded")
	}
	if !d.Holds(1, 129) {
		t.Fatal("unrelated holder lost")
	}
	if d.Entries() != 1 {
		t.Fatalf("Entries = %d, want 1 (doc 2's entry must be deleted with its last holder)", d.Entries())
	}
}

// TestQuickDirectoryWideMatchesNarrow drives the same random operation
// sequence against a 64-node single-word directory and the same 64 nodes
// embedded in a 128-node multi-word one; every Holds answer must agree.
func TestQuickDirectoryWideMatchesNarrow(t *testing.T) {
	narrow := newDirectory(wideNodes(64))
	wide := newDirectory(wideNodes(128))
	rng := rand.New(rand.NewSource(99))
	for i := 0; i < 5000; i++ {
		n := cnet.NodeID(rng.Intn(64))
		doc := trace.DocID(rng.Intn(40))
		switch rng.Intn(5) {
		case 0:
			narrow.DropNode(n)
			wide.DropNode(n)
		default:
			cached := rng.Intn(3) != 0
			narrow.Set(n, doc, cached)
			wide.Set(n, doc, cached)
		}
		cn := cnet.NodeID(rng.Intn(64))
		cd := trace.DocID(rng.Intn(40))
		if narrow.Holds(cd, cn) != wide.Holds(cd, cn) {
			t.Fatalf("step %d: narrow/wide disagree on doc %d node %d", i, cd, cn)
		}
	}
	if narrow.Entries() != wide.Entries() {
		t.Fatalf("Entries diverged: narrow %d, wide %d", narrow.Entries(), wide.Entries())
	}
}

// TestShardOwnerMatchesHomePlacement: the sharded directory authority
// for a document must be the same node the request router falls back to
// (home = view[doc mod n]) — that coincidence is what makes the owner
// both the directory and the natural miss target.
func TestShardOwnerMatchesHomePlacement(t *testing.T) {
	nodes := wideNodes(96)
	s := &Server{cfg: Config{Self: 0, Nodes: nodes}}
	for _, n := range nodes {
		s.viewAdd(n)
	}
	for doc := trace.DocID(0); doc < 500; doc++ {
		view := s.sortedView()
		if got, want := s.shardOwner(doc), view[int(doc)%len(view)]; got != want {
			t.Fatalf("doc %d: shardOwner %d, home %d", doc, got, want)
		}
	}
}
