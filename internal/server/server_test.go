package server_test

import (
	"testing"
	"time"

	"press/internal/cnet"
	"press/internal/machine"
	"press/internal/metrics"
	"press/internal/qmon"
	"press/internal/server"
	"press/internal/sim"
	"press/internal/simdisk"
	"press/internal/simnet"
	"press/internal/trace"
	"press/internal/workload"
)

// testCluster assembles an n-node PRESS cluster with one client driver.
type testCluster struct {
	sim      *sim.Sim
	net      *simnet.Network
	log      *metrics.Log
	machines []*machine.Machine
	servers  []**server.Server // latest incarnation per node
	gen      *workload.Generator
	rec      *workload.Recorder
	catalog  *trace.Catalog
}

type clusterOpts struct {
	n        int
	coop     bool
	ring     bool
	qmon     bool
	sharded  bool
	rate     float64
	memb     func(node cnet.NodeID) server.MembershipView
	maxConc  int
	hbPeriod time.Duration
}

func newTestCluster(t *testing.T, o clusterOpts) *testCluster {
	t.Helper()
	if o.hbPeriod == 0 {
		o.hbPeriod = time.Second
	}
	if o.maxConc == 0 {
		o.maxConc = 32
	}
	s := sim.New(42)
	log := &metrics.Log{}
	net := simnet.New(s, simnet.DefaultConfig(), log)
	// A small catalog keeps tests fast: 2000 docs, each node caches 500.
	cat := trace.NewCatalog(2000, 27*1024, 0.8)
	tc := &testCluster{sim: s, net: net, log: log, catalog: cat}

	var nodes []cnet.NodeID
	for i := 0; i < o.n; i++ {
		nodes = append(nodes, cnet.NodeID(i))
	}
	diskCfg := simdisk.Config{MeanService: 40 * time.Millisecond, JitterFrac: 0.2, QueueCap: 8, Workers: 2}
	for i := 0; i < o.n; i++ {
		i := i
		disks := simdisk.NewArray(s, s.NewRand("disks"), diskCfg, 2)
		m := machine.New(s, net, nodes[i], disks, log)
		holder := new(*server.Server)
		tc.servers = append(tc.servers, holder)
		cfg := server.Config{
			Self:            nodes[i],
			Nodes:           nodes,
			Cooperative:     o.coop,
			Sharded:         o.sharded,
			RingDetector:    o.ring,
			HeartbeatPeriod: o.hbPeriod,
			HeartbeatMiss:   3,
			JoinTimeout:     500 * time.Millisecond,
			CacheBytes:      500 * 27 * 1024,
			Catalog:         cat,
			MaxConcurrent:   o.maxConc,
			Cost: server.CostModel{
				Accept: time.Millisecond, LocalHit: 2 * time.Millisecond,
				Forward: 500 * time.Microsecond, PeerServe: 1500 * time.Microsecond,
				Reply: time.Millisecond, DiskDone: time.Millisecond,
				Control: 100 * time.Microsecond,
			},
		}
		if o.qmon {
			qc := qmon.Config{TotalThreshold: 32, RequestThreshold: 16, RerouteThreshold: 8, ProbeFraction: 0.1}
			cfg.QMon = &qc
		}
		m.AddProc("press", func(env *machine.Env) {
			var mv server.MembershipView
			if o.memb != nil {
				mv = o.memb(cfg.Self)
			}
			*holder = server.New(cfg, env, disks, mv)
		})
		tc.machines = append(tc.machines, m)
	}

	tc.rec = workload.NewRecorder()
	if o.rate > 0 {
		tc.gen = workload.NewGenerator(s, net, 1000, workload.Config{
			Rate:    o.rate,
			Targets: nodes,
			Catalog: cat,
		}, tc.rec)
	}
	return tc
}

func (tc *testCluster) srv(i int) *server.Server { return *tc.servers[i] }

func (tc *testCluster) run(d time.Duration) { tc.sim.RunFor(d) }

func viewsEqualAll(tc *testCluster, n int) bool {
	for i := 0; i < n; i++ {
		if tc.machines[i].State() != simnet.NodeUp || !tc.machines[i].Proc("press").Alive() {
			continue
		}
		if len(tc.srv(i).View()) != n {
			return false
		}
	}
	return true
}

func TestColdStartFormsFullView(t *testing.T) {
	tc := newTestCluster(t, clusterOpts{n: 4, coop: true, ring: true})
	tc.run(3 * time.Second)
	for i := 0; i < 4; i++ {
		if got := len(tc.srv(i).View()); got != 4 {
			t.Fatalf("node %d view size %d, want 4\n%s", i, got, tc.log.Dump())
		}
	}
}

func TestServesRequestsNoFaults(t *testing.T) {
	tc := newTestCluster(t, clusterOpts{n: 4, coop: true, ring: true, rate: 60})
	tc.run(2 * time.Second) // let the cluster form
	tc.gen.Start()
	tc.run(60 * time.Second)
	if tc.rec.Offered < 3000 {
		t.Fatalf("offered only %d requests", tc.rec.Offered)
	}
	avail := tc.rec.Availability(10*time.Second, tc.sim.Now()-8*time.Second)
	if avail < 0.999 {
		t.Fatalf("fault-free availability %v, want ~1 (failed=%d connect=%d complete=%d)",
			avail, tc.rec.Failed, tc.rec.ConnectFailures, tc.rec.CompleteFailures)
	}
}

func TestCooperativeCacheForwards(t *testing.T) {
	tc := newTestCluster(t, clusterOpts{n: 4, coop: true, ring: true, rate: 60})
	tc.run(2 * time.Second)
	tc.gen.Start()
	tc.run(60 * time.Second)
	var forwards, remote uint64
	for i := 0; i < 4; i++ {
		st := tc.srv(i).Stats()
		forwards += st.ForwardsOut
		remote += st.RemoteServed
	}
	if forwards == 0 || remote == 0 {
		t.Fatalf("no cooperation observed: forwards=%d remote=%d", forwards, remote)
	}
}

func TestIndependentNeverForwards(t *testing.T) {
	tc := newTestCluster(t, clusterOpts{n: 4, coop: false, rate: 40})
	tc.gen.Start()
	tc.run(30 * time.Second)
	for i := 0; i < 4; i++ {
		if st := tc.srv(i).Stats(); st.ForwardsOut != 0 || st.PeerServes != 0 {
			t.Fatalf("INDEP node %d cooperated: %+v", i, st)
		}
	}
	if tc.rec.Succeeded == 0 {
		t.Fatal("INDEP served nothing")
	}
}

func TestNodeCrashDetectedExcludedAndRejoins(t *testing.T) {
	tc := newTestCluster(t, clusterOpts{n: 4, coop: true, ring: true, rate: 60})
	tc.run(2 * time.Second)
	tc.gen.Start()
	tc.run(10 * time.Second)

	crashAt := tc.sim.Now()
	tc.machines[2].Crash()
	tc.run(10 * time.Second) // > 3 heartbeats

	for _, i := range []int{0, 1, 3} {
		if got := len(tc.srv(i).View()); got != 3 {
			t.Fatalf("node %d view size %d after crash, want 3", i, got)
		}
	}
	if _, ok := tc.log.FirstMatch(crashAt, func(e metrics.Event) bool {
		return e.Kind == metrics.EvDetect && e.Node == 2
	}); !ok {
		t.Fatalf("no detection event for node 2\n%s", tc.log.Dump())
	}

	tc.machines[2].Restart()
	tc.run(8 * time.Second)
	if !viewsEqualAll(tc, 4) {
		for i := 0; i < 4; i++ {
			t.Logf("node %d view %v", i, tc.srv(i).View())
		}
		t.Fatal("cluster did not reintegrate after restart")
	}
}

func TestNodeFreezeSplintersNoRejoin(t *testing.T) {
	tc := newTestCluster(t, clusterOpts{n: 4, coop: true, ring: true, rate: 60})
	tc.run(2 * time.Second)
	tc.gen.Start()
	tc.run(10 * time.Second)

	tc.machines[1].Freeze()
	tc.run(10 * time.Second)
	for _, i := range []int{0, 2, 3} {
		if got := len(tc.srv(i).View()); got != 3 {
			t.Fatalf("node %d view size %d during freeze, want 3", i, got)
		}
	}
	tc.machines[1].Unfreeze()
	tc.run(20 * time.Second)
	// The violated fault model: the thawed node does NOT rejoin; it ends
	// up as a singleton (its connections were torn down) and the others
	// keep running without it.
	if got := len(tc.srv(1).View()); got != 1 {
		t.Fatalf("thawed node view size %d, want splintered singleton", got)
	}
	for _, i := range []int{0, 2, 3} {
		if got := len(tc.srv(i).View()); got != 3 {
			t.Fatalf("node %d view size %d after thaw, want 3 (splinter)", i, got)
		}
	}
}

func TestAppCrashFastExclusionAndRejoin(t *testing.T) {
	tc := newTestCluster(t, clusterOpts{n: 4, coop: true, ring: true, rate: 60})
	tc.run(2 * time.Second)
	tc.gen.Start()
	tc.run(5 * time.Second)

	crashAt := tc.sim.Now()
	tc.machines[3].KillProc("press")
	tc.run(2 * time.Second) // RSTs propagate well before heartbeat timeout
	for _, i := range []int{0, 1, 2} {
		if got := len(tc.srv(i).View()); got != 3 {
			t.Fatalf("node %d view size %d shortly after app crash, want 3", i, got)
		}
	}
	// Exclusion must have happened well before the ring deadline (3 x 1 s).
	ev, ok := tc.log.FirstMatch(crashAt, func(e metrics.Event) bool {
		return e.Kind == metrics.EvExclude && e.Node == 3
	})
	if !ok || ev.At-crashAt > 2*time.Second {
		t.Fatalf("exclusion too slow or missing (ev=%+v ok=%v)", ev, ok)
	}

	tc.machines[3].StartProc("press")
	tc.run(8 * time.Second)
	if !viewsEqualAll(tc, 4) {
		t.Fatal("cluster did not reintegrate after app restart")
	}
}

func TestDiskFaultWedgesClusterThenRingExcludes(t *testing.T) {
	tc := newTestCluster(t, clusterOpts{n: 4, coop: true, ring: true, rate: 80})
	tc.run(2 * time.Second)
	tc.gen.Start()
	tc.run(30 * time.Second) // warm caches a little

	faultAt := tc.sim.Now()
	for _, d := range tc.machines[0].Disks().Disks() {
		d.SetFaulty(true)
	}
	// The sick node's main thread eventually blocks on the full disk
	// queue, stops heartbeating, and the ring excludes it.
	tc.run(60 * time.Second)
	if _, ok := tc.log.Filter("", metrics.EvExclude).Node(0).After(faultAt + 1).First(); !ok {
		t.Fatalf("sick node never excluded\n%s", tc.log.Dump())
	}
	if !tc.machines[0].Proc("press").Stalled() {
		t.Fatal("sick node's main thread is not blocked on the disk queue")
	}
	// Survivors keep serving: availability after exclusion recovers.
	av := tc.rec.Availability(tc.sim.Now()-15*time.Second, tc.sim.Now()-8*time.Second)
	if av < 0.5 {
		t.Fatalf("post-exclusion availability %v too low", av)
	}
}

func TestQMonExcludesHungPeerWithoutRing(t *testing.T) {
	tc := newTestCluster(t, clusterOpts{n: 4, coop: true, ring: false, qmon: true, rate: 80})
	tc.run(2 * time.Second)
	tc.gen.Start()
	tc.run(20 * time.Second)

	hangAt := tc.sim.Now()
	tc.machines[2].Proc("press").Hang()
	tc.run(150 * time.Second)

	if _, ok := tc.log.FirstMatch(hangAt, func(e metrics.Event) bool {
		return e.Kind == metrics.EvQMonFail && e.Node == 2
	}); !ok {
		t.Fatalf("queue monitoring never failed the hung peer\n%s", tc.log.Dump())
	}
	for _, i := range []int{0, 1, 3} {
		for _, v := range tc.srv(i).View() {
			if v == 2 {
				t.Fatalf("hung node still in node %d's view", i)
			}
		}
	}
}

func TestProbeAnswered(t *testing.T) {
	tc := newTestCluster(t, clusterOpts{n: 2, coop: true, ring: true})
	tc.run(2 * time.Second)
	probe := tc.net.AddIface(500)
	var resp *server.RespMsg
	probe.Dial(0, cnet.ClassClient, server.PortHTTP, cnet.StreamHandlers{
		OnMessage: func(c cnet.Conn, m cnet.Message) {
			resp = m.(*server.RespMsg)
		},
	}, func(c cnet.Conn, err error) {
		if err != nil {
			t.Errorf("probe dial: %v", err)
			return
		}
		c.TrySend(&server.ReqMsg{ID: 1, Probe: true}, 64)
	})
	tc.run(time.Second)
	if resp == nil || !resp.OK || !resp.Probe {
		t.Fatalf("probe response %+v", resp)
	}
}

func TestLinkDownSplintersBothSides(t *testing.T) {
	tc := newTestCluster(t, clusterOpts{n: 4, coop: true, ring: true, rate: 40})
	tc.run(2 * time.Second)
	tc.gen.Start()
	tc.run(5 * time.Second)

	tc.machines[3].Iface().SetLink(false)
	tc.run(15 * time.Second)
	if got := len(tc.srv(3).View()); got != 1 {
		t.Fatalf("isolated node view %v, want singleton", tc.srv(3).View())
	}
	for _, i := range []int{0, 1, 2} {
		if got := len(tc.srv(i).View()); got != 3 {
			t.Fatalf("node %d view size %d, want 3", i, got)
		}
	}
	// Heal: base PRESS stays splintered (no process restarted).
	tc.machines[3].Iface().SetLink(true)
	tc.run(15 * time.Second)
	if got := len(tc.srv(3).View()); got != 1 {
		t.Fatalf("view healed to %d without restart; base PRESS must stay splintered", got)
	}
}
