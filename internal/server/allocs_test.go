package server_test

import (
	"testing"
	"time"
)

// A ring-heartbeat interval on an idle, fully-formed cluster is the
// steady-state control-plane hot path: every node sends one pooled HBMsg
// to its ring successor and releases the one it receives. Once the
// message pools and kernel event pools are warm, a whole heartbeat
// period across the cluster must allocate (amortized) nothing beyond the
// event log's occasional chunk. This pins the pooled-message discipline:
// an un-released heartbeat or a closure sneaking into the tick path
// fails the bound immediately.
func TestRingHeartbeatAllocsPerRun(t *testing.T) {
	tc := newTestCluster(t, clusterOpts{n: 4, coop: true, ring: true})
	tc.run(10 * time.Second) // form the cluster, warm every pool

	period := time.Second // clusterOpts default hbPeriod
	for i := 0; i < 8; i++ {
		tc.run(period)
	}
	per := testing.AllocsPerRun(50, func() { tc.run(period) })
	// Budget: one heartbeat per node per period, all pooled. Allow a few
	// objects of amortized slack (log chunks, rare free-list growth) but
	// fail hard if per-send allocation returns (4 sends/period would show
	// up as >= 8: one message record + one event closure each).
	if per > 4 {
		t.Errorf("ring heartbeat period allocates %.2f objects across 4 nodes; want ~0 with warm pools", per)
	}
}
