package server_test

import (
	"testing"

	"press/internal/cnet"
	"press/internal/server"
)

// TestPoolLessRecordsStayOutOfPools pins the free-list audit's MsgPool
// rule: cnet.MsgPool free lists carry no generation counters, so they
// must never receive records they did not hand out. Snapshot restore
// leans on this — every wire message decoded from a blob is rebuilt as a
// plain pool-less record (home unset), and its eventual Release has to
// be a GC-leak no-op rather than an insertion of a foreign record into
// the restored server's (independently refilling) pools.
func TestPoolLessRecordsStayOutOfPools(t *testing.T) {
	var pool cnet.MsgPool[server.ReqMsg]
	pooled := server.NewReqMsg(&pool)
	pooled.Release()

	foreign := &server.ReqMsg{ID: 9} // what MsgCodec.Decode produces
	foreign.Release()                // no home pool: must be a no-op

	if got := pool.Get(); got != pooled {
		t.Fatalf("pool handed out %p, want the released record %p", got, pooled)
	}
	if got := pool.Get(); got == foreign {
		t.Fatal("a pool-less record entered the free list on Release")
	}
	if foreign.ID != 9 {
		t.Fatalf("no-op Release zeroed the record (ID=%d)", foreign.ID)
	}
}
