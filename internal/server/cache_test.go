package server

import (
	"math/rand"
	"testing"
	"testing/quick"

	"press/internal/cnet"
	"press/internal/trace"
)

func TestDocCacheLRUEviction(t *testing.T) {
	c := newDocCache(3, 16)
	for d := trace.DocID(0); d < 3; d++ {
		if _, ev := c.Insert(d); ev {
			t.Fatal("eviction before capacity")
		}
	}
	// Touch 0 so 1 becomes LRU.
	if !c.Has(0) {
		t.Fatal("miss on cached doc")
	}
	evicted, did := c.Insert(3)
	if !did || evicted != 1 {
		t.Fatalf("evicted %v (did=%v), want 1", evicted, did)
	}
	if c.Peek(1) {
		t.Fatal("evicted doc still present")
	}
	if !c.Peek(0) || !c.Peek(2) || !c.Peek(3) {
		t.Fatal("wrong survivors")
	}
}

func TestDocCacheReinsertRefreshes(t *testing.T) {
	c := newDocCache(2, 16)
	c.Insert(1)
	c.Insert(2)
	if _, did := c.Insert(1); did {
		t.Fatal("reinsert evicted")
	}
	// 2 is now LRU.
	if ev, _ := c.Insert(3); ev != 2 {
		t.Fatalf("evicted %v, want 2", ev)
	}
}

func TestDocCacheDocsOrder(t *testing.T) {
	c := newDocCache(3, 16)
	c.Insert(1)
	c.Insert(2)
	c.Insert(3)
	docs := c.Docs()
	if len(docs) != 3 || docs[0] != 3 || docs[2] != 1 {
		t.Fatalf("Docs = %v, want MRU-first", docs)
	}
}

// Property: the cache never exceeds capacity and Has agrees with Peek.
func TestQuickDocCacheBounded(t *testing.T) {
	f := func(ops []uint16, capSeed uint8) bool {
		capDocs := int(capSeed)%20 + 1
		c := newDocCache(capDocs, 0)
		for _, op := range ops {
			c.Insert(trace.DocID(op % 100))
			if c.Len() > capDocs {
				return false
			}
		}
		for d := trace.DocID(0); d < 100; d++ {
			if c.Peek(d) != c.Has(d) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

func TestDirectorySetAndHolders(t *testing.T) {
	nodes := []cnet.NodeID{0, 1, 2, 3}
	d := newDirectory(nodes)
	d.Set(1, 7, true)
	d.Set(3, 7, true)
	holders := d.Holders(7, nodes)
	if len(holders) != 2 || holders[0] != 1 || holders[1] != 3 {
		t.Fatalf("holders = %v", holders)
	}
	// Candidates filter.
	holders = d.Holders(7, []cnet.NodeID{0, 3})
	if len(holders) != 1 || holders[0] != 3 {
		t.Fatalf("filtered holders = %v", holders)
	}
	d.Set(1, 7, false)
	if h := d.Holders(7, nodes); len(h) != 1 {
		t.Fatalf("after clear: %v", h)
	}
}

func TestDirectoryDropNode(t *testing.T) {
	nodes := []cnet.NodeID{0, 1}
	d := newDirectory(nodes)
	d.Set(0, 1, true)
	d.Set(1, 1, true)
	d.Set(1, 2, true)
	d.DropNode(1)
	if h := d.Holders(1, nodes); len(h) != 1 || h[0] != 0 {
		t.Fatalf("holders after drop: %v", h)
	}
	if h := d.Holders(2, nodes); len(h) != 0 {
		t.Fatalf("doc 2 holders after drop: %v", h)
	}
	if d.Entries() != 1 {
		t.Fatalf("Entries = %d", d.Entries())
	}
}

func TestDirectoryUnknownNodeIgnored(t *testing.T) {
	d := newDirectory([]cnet.NodeID{0, 1})
	d.Set(99, 5, true) // not in the static node list
	if h := d.Holders(5, []cnet.NodeID{0, 1, 99}); len(h) != 0 {
		t.Fatalf("unknown node recorded: %v", h)
	}
	d.DropNode(99) // must not panic
}

// Property: Holders never returns a node whose last Set for that doc was
// false, under any interleaving.
func TestQuickDirectoryConsistency(t *testing.T) {
	nodes := []cnet.NodeID{0, 1, 2, 3, 4, 5, 6, 7}
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		d := newDirectory(nodes)
		last := map[[2]int]bool{}
		for i := 0; i < 200; i++ {
			n := cnet.NodeID(rng.Intn(8))
			doc := trace.DocID(rng.Intn(20))
			cached := rng.Intn(2) == 0
			d.Set(n, doc, cached)
			last[[2]int{int(n), int(doc)}] = cached
		}
		for doc := trace.DocID(0); doc < 20; doc++ {
			for _, h := range d.Holders(doc, nodes) {
				if !last[[2]int{int(h), int(doc)}] {
					return false
				}
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Fatal(err)
	}
}

func TestDiskKeySpreadsAcrossDisks(t *testing.T) {
	// Ownership uses doc mod viewsize; disk placement must not alias with
	// it (the bug class this guards: node i's documents all landing on
	// one disk).
	counts := [2]int{}
	for doc := trace.DocID(1); doc < 1000; doc += 4 { // node 1's docs in a 4-view
		counts[diskKey(doc)%2]++
	}
	if counts[0] == 0 || counts[1] == 0 {
		t.Fatalf("disk placement aliases ownership: %v", counts)
	}
}
