package server

import (
	"time"

	"press/internal/clock"
	"press/internal/cnet"
)

// ringDetector is PRESS's built-in fault detector (§3): cluster nodes
// form a directed ring ordered by node ID; each node heartbeats only the
// node it points to (its successor) and watches for heartbeats from its
// predecessor. Three consecutive missing heartbeats declare the
// predecessor dead; the detecting node excludes it and broadcasts the
// exclusion so the whole ring reconfigures.
//
// Heartbeats are sent by the main coordinating thread, so a server whose
// main thread is blocked (full disk queue) or hung stops heartbeating —
// that, not any network fault, is how disk faults surface in Figure 4.
type ringDetector struct {
	s       *Server
	enabled bool
	pred    cnet.NodeID
	succ    cnet.NodeID
	lastHB  time.Duration
	hb      clock.Ticker
}

func (r *ringDetector) init(s *Server) {
	r.s = s
	r.pred, r.succ = cnet.None, cnet.None
	if !s.cfg.RingDetector {
		return
	}
	r.enabled = true
	r.recompute()
	r.hb = r.s.env.Clock().Every(r.s.cfg.HeartbeatPeriod, r.tick)
}

func (r *ringDetector) tick() {
	if !r.enabled {
		r.hb.Stop()
		return
	}
	s := r.s
	s.env.Charge(s.cfg.Cost.Control)
	if r.succ != cnet.None {
		hb := NewHBMsg(&s.hbPool)
		hb.From, hb.Load = s.cfg.Self, s.active
		s.env.Send(r.succ, cnet.ClassIntra, PortHB, hb, sizeHB)
	}
	if r.pred != cnet.None {
		deadline := time.Duration(s.cfg.HeartbeatMiss) * s.cfg.HeartbeatPeriod
		if s.env.Clock().Now()-r.lastHB > deadline {
			dead := r.pred
			s.emitDetect(int(dead), s.ringMissDetail)
			// Tell the rest of the ring before reconfiguring locally.
			for _, n := range s.sortedView() {
				if n != s.cfg.Self && n != dead {
					s.env.Send(n, cnet.ClassIntra, PortControl, ExcludeMsg{From: s.cfg.Self, Dead: dead}, sizeControl)
				}
			}
			s.exclude(dead, "ring heartbeat loss")
		}
	}
}

// onHeartbeat is the server's PortHB datagram handler.
func (s *Server) onHeartbeat(from cnet.NodeID, m cnet.Message) {
	hb, ok := m.(*HBMsg)
	if !ok {
		return
	}
	s.env.Charge(s.cfg.Cost.Control)
	s.peerLoad(hb.From, hb.Load)
	if hb.From == s.ring.pred {
		s.ring.lastHB = s.env.Clock().Now()
	}
	hb.Release()
}

// recompute re-derives ring neighbours after any view change. A fresh
// predecessor gets a full grace window.
func (r *ringDetector) recompute() {
	if !r.enabled {
		return
	}
	view := r.s.sortedView()
	if len(view) <= 1 {
		r.pred, r.succ = cnet.None, cnet.None
		return
	}
	self := r.s.cfg.Self
	idx := -1
	for i, n := range view {
		if n == self {
			idx = i
			break
		}
	}
	if idx < 0 {
		r.pred, r.succ = cnet.None, cnet.None
		return
	}
	newSucc := view[(idx+1)%len(view)]
	newPred := view[(idx-1+len(view))%len(view)]
	r.succ = newSucc
	if newPred != r.pred {
		r.pred = newPred
		r.lastHB = r.s.env.Clock().Now()
	}
}
