package server

import (
	"press/internal/cnet"
	"press/internal/trace"
)

// acceptClient handles client-facing (or front-end-forwarded, or
// FME-probe) connections. One request per connection, HTTP/1.0 style.
//
// Shedding happens here, at accept time: when the service slots and the
// backlog are both full, the connection is refused like a kernel
// overflowing its SYN queue — without costing the main coordinating
// thread anything. This keeps heartbeats timely under overload; without
// it, deep overload delays the heartbeat path enough to splinter the
// cluster, which is not a behaviour the paper's testbed exhibited.
func (s *Server) acceptClient(c cnet.Conn) cnet.StreamHandlers {
	if s.active >= s.cfg.MaxConcurrent && s.QueuedAccepts() >= s.cfg.AcceptBacklog {
		c.Close()
		return cnet.StreamHandlers{}
	}
	return s.clientH
}

func (s *Server) onClientMsg(c cnet.Conn, m cnet.Message) {
	req, ok := m.(*ReqMsg)
	if !ok {
		return
	}
	s.handleRequest(c, req)
}

func (s *Server) onClientClose(c cnet.Conn, err error) {
	// Client gave up (timeout) or finished: release anything the request
	// still holds.
	if id, ok := s.clientOf[c]; ok {
		delete(s.clientOf, c)
		if st := s.inflight[id]; st != nil {
			cnet.ReleaseConn(c) // pin taken when admit stored it
			st.client = nil
			s.finish(st, false)
		}
	}
	// Also drop it from the accept queue if it never got a slot.
	for i := s.acceptHead; i < len(s.acceptQ); i++ {
		if s.acceptQ[i].conn == c {
			s.acceptQ = append(s.acceptQ[:i], s.acceptQ[i+1:]...)
			break
		}
	}
}

func (s *Server) handleRequest(c cnet.Conn, req *ReqMsg) {
	if req.Probe {
		// FME/S-FME liveness probe: answered inline by the main thread,
		// no slot, reporting the cooperation set.
		s.env.Charge(s.cfg.Cost.Control)
		resp := NewRespMsg(&s.respPool)
		resp.ID, resp.OK, resp.Probe, resp.View = req.ID, true, true, s.View()
		req.Release()
		c.TrySend(resp, sizeResp)
		return
	}
	if s.active >= s.cfg.MaxConcurrent {
		if s.QueuedAccepts() >= s.cfg.AcceptBacklog {
			// Listen backlog full: shed the connection cheaply, like a
			// kernel-level refusal, before any parsing happens.
			s.env.Charge(s.cfg.Cost.Control)
			req.Release()
			c.Close()
			return
		}
		// No service slot: the request waits unserved. Under a stuck-peer
		// fault this queue is where cluster throughput goes to die. The
		// accept/parse cost is charged on admission.
		s.acceptQ = append(s.acceptQ, pendingReq{conn: c, msg: req})
		return
	}
	s.env.Charge(s.cfg.Cost.Accept)
	s.admit(c, req)
}

func (s *Server) admit(c cnet.Conn, req *ReqMsg) {
	s.active++
	s.nextID++
	st := s.getReq()
	st.id, st.doc, st.client = s.nextID, req.Doc, c
	// The request record holds the conn until finish. The pin matters even
	// though clientOf normally clears st.client on close: a deferred
	// admission can store a conn whose close already dispatched (it was
	// popped from the accept queue before the close arrived), and then
	// nothing ever clears st.client — without the pin the pair would
	// recycle under the record and respond would send into a reused conn.
	cnet.RetainConn(c)
	req.Release()
	s.inflight[st.id] = st
	s.clientOf[c] = st.id
	s.route(st)
}

func (s *Server) getReq() *reqState {
	if n := len(s.reqFree); n > 0 {
		st := s.reqFree[n-1]
		s.reqFree = s.reqFree[:n-1]
		return st
	}
	return &reqState{forwardedTo: cnet.None}
}

// putReq recycles a finished request's state. The generation bump
// invalidates any disk continuation still pointing at st.
func (s *Server) putReq(st *reqState) {
	st.gen++
	st.client = nil
	st.forwardedTo = cnet.None
	s.reqFree = append(s.reqFree, st)
}

// route decides how to serve st: local cache, a caching peer, the
// document's home node, or the local disk (§3's request distribution).
func (s *Server) route(st *reqState) {
	if s.cache.Has(st.doc) {
		s.env.Charge(s.cfg.Cost.LocalHit)
		s.stats.LocalHits++
		s.respond(st, true)
		return
	}
	if !s.cfg.Cooperative {
		s.diskServe(st)
		return
	}
	if target, ok := s.pickService(st.doc); ok {
		s.forward(st, target)
		return
	}
	s.diskServe(st)
}

// diskServe reads st's document from the local disk and responds.
func (s *Server) diskServe(st *reqState) {
	op := s.getDiskOp()
	op.doc, op.st, op.stGen = st.doc, st, st.gen
	s.diskRead(op)
}

// pickService chooses the service node for a document we don't cache:
// the least-loaded peer known to cache it, else the document's home node
// (hash placement), unless queue monitoring says to route away.
func (s *Server) pickService(doc trace.DocID) (cnet.NodeID, bool) {
	view := s.sortedView()
	if len(view) <= 1 {
		return cnet.None, false
	}
	best := cnet.None
	bestLoad := int(^uint(0) >> 1)
	s.dir.eachHolder(doc, func(n cnet.NodeID) {
		if n == s.cfg.Self || !s.inView(n) {
			return
		}
		if s.qm != nil && s.qm.ShouldReroute(n) {
			s.stats.Rerouted++
			return
		}
		if l := s.peer(n).load; l < bestLoad {
			best, bestLoad = n, l
		}
	})
	if best != cnet.None {
		return best, true
	}
	home := view[int(doc)%len(view)]
	if home == s.cfg.Self {
		return cnet.None, false
	}
	if s.qm != nil && s.qm.ShouldReroute(home) {
		s.stats.Rerouted++
		return cnet.None, false
	}
	return home, true
}

func (s *Server) forward(st *reqState, target cnet.NodeID) {
	s.env.Charge(s.cfg.Cost.Forward)
	st.forwardedTo = target
	s.stats.ForwardsOut++
	m := NewFwdMsg(&s.fwdPool)
	m.ID, m.Doc, m.Load = st.id, st.doc, s.active
	m.Origin = cnet.None // first hop; pool recycling zeroes the field
	s.enqueue(target, outMsg{m: m, size: sizeFwd, isReq: true, reqID: st.id})
}

// completeForwarded handles a service node's reply. In the sharded
// protocol the reply may come from a holder the home node relayed to —
// a node other than the one we forwarded to — so the sender check
// relaxes to "still awaiting a forward at all".
func (s *Server) completeForwarded(from cnet.NodeID, msg *FwdReplyMsg) {
	st := s.inflight[msg.ID]
	if st == nil {
		return // request already dead (client timeout)
	}
	if s.cfg.Sharded {
		if st.forwardedTo == cnet.None {
			return // rerouted meanwhile; a newer path owns the request
		}
	} else if st.forwardedTo != from {
		return // rerouted elsewhere
	}
	s.env.Charge(s.cfg.Cost.Reply)
	s.stats.RemoteServed++
	s.respond(st, msg.OK)
}

// servePeer is the service-node half of a forwarded request. Under the
// sharded protocol the home node additionally acts as directory
// authority: on a local miss it relays the forward to a known holder
// (stamping Origin so the holder replies straight to the initial node)
// before falling back to its own disks. A relayed forward that loses
// its holder dies by client timeout — the home keeps no per-request
// state for it.
func (s *Server) servePeer(from cnet.NodeID, msg *FwdMsg) {
	replyTo := from
	if msg.Origin != cnet.None {
		replyTo = msg.Origin
	}
	if s.cache.Has(msg.Doc) {
		s.env.Charge(s.cfg.Cost.PeerServe)
		s.replyPeer(replyTo, msg.ID, msg.Doc, true)
		return
	}
	if s.cfg.Sharded && msg.Origin == cnet.None {
		if holder, ok := s.pickHolder(msg.Doc, from); ok {
			s.env.Charge(s.cfg.Cost.Forward)
			m := NewFwdMsg(&s.fwdPool)
			m.ID, m.Doc, m.Load = msg.ID, msg.Doc, s.active
			m.Origin = from
			s.enqueue(holder, outMsg{m: m, size: sizeFwd, isReq: true})
			return
		}
	}
	// Miss at the service node: read and start caching (the announce
	// happens when the read completes).
	s.env.Charge(s.cfg.Cost.PeerServe)
	op := s.getDiskOp()
	op.doc, op.peerServe, op.from, op.id = msg.Doc, true, replyTo, msg.ID
	s.diskRead(op)
}

// pickHolder chooses the least-loaded node recorded as caching doc,
// excluding ourselves and the requester (who just missed on it) and
// honouring queue monitoring — the sharded home node's relay target.
func (s *Server) pickHolder(doc trace.DocID, origin cnet.NodeID) (cnet.NodeID, bool) {
	best := cnet.None
	bestLoad := int(^uint(0) >> 1)
	s.dir.eachHolder(doc, func(n cnet.NodeID) {
		if n == s.cfg.Self || n == origin || !s.inView(n) {
			return
		}
		if s.qm != nil && s.qm.ShouldReroute(n) {
			s.stats.Rerouted++
			return
		}
		if l := s.peer(n).load; l < bestLoad {
			best, bestLoad = n, l
		}
	})
	return best, best != cnet.None
}

// replyPeer answers a forwarded request back to the requesting node.
func (s *Server) replyPeer(from cnet.NodeID, id uint64, doc trace.DocID, ok bool) {
	if !s.inView(from) {
		return
	}
	s.stats.PeerServes++
	m := NewFwdReplyMsg(&s.fwdRepPool)
	m.ID, m.Doc, m.OK, m.Load = id, doc, ok, s.active
	s.enqueue(from, outMsg{m: m, size: sizeResp + int(s.cfg.Catalog.Size)})
}

// diskKey maps a document to its placement key on the local disks. The
// low bits of the document ID drive cooperative-cache ownership (home =
// view[doc mod n]), so the disk placement must use different bits or each
// node would exercise only one of its disks.
func diskKey(doc trace.DocID) int { return int(doc) >> 3 }

// diskOp is a pooled disk-read continuation: one record carries a read
// through submission, the queue-full stall/retry loop, and the completion
// bounce, with every callback built once at record creation.
type diskOp struct {
	s   *Server
	doc trace.DocID
	ok  bool

	// Local-serve completion. stGen guards against the request dying
	// (client timeout) and st being recycled while the read is in flight.
	st    *reqState
	stGen uint64

	// Peer-serve completion.
	peerServe bool
	from      cnet.NodeID
	id        uint64

	onDone  func(ok bool) // disk context: bounce through the mailbox
	bounce  func()        // server context: finish the read
	notify  func()        // disk context: queue space freed
	requeue func()        // server context: retry the submission

	// Snapshot identity: slot indexes s.diskOps while the op is live, and
	// the bounce/requeue timer handles are retained so their serials can
	// be re-claimed on restore.
	slot     int
	bounceT  timerHandle
	requeueT timerHandle
}

func (s *Server) getDiskOp() *diskOp {
	var op *diskOp
	if n := len(s.diskFree); n > 0 {
		op = s.diskFree[n-1]
		s.diskFree = s.diskFree[:n-1]
	} else {
		op = &diskOp{s: s}
		op.onDone = func(ok bool) {
			// Disk completions arrive from the disk subsystem's context;
			// bounce them through the mailbox. The handle is retained only
			// in snapshot-tagged (sim) worlds: there the disk context is the
			// single sim goroutine, while on a live stack this closure runs
			// on a real timer goroutine and the write would race putDiskOp.
			op.ok = ok
			t := op.s.env.Clock().AfterFunc(0, op.bounce)
			if op.s.diskTag != nil {
				op.bounceT = t
			}
		}
		op.bounce = func() { op.s.diskDone(op) }
		op.notify = func() {
			// Queue space freed: unblock the main thread, then retry this same
			// operation as its own work item.
			op.s.env.Resume()
			t := op.s.env.Clock().AfterFunc(0, op.requeue)
			if op.s.diskTag != nil {
				op.requeueT = t
			}
		}
		op.requeue = func() { op.s.diskRead(op) }
	}
	op.slot = len(s.diskOps)
	s.diskOps = append(s.diskOps, op)
	return op
}

func (s *Server) putDiskOp(op *diskOp) {
	last := len(s.diskOps) - 1
	moved := s.diskOps[last]
	s.diskOps[op.slot] = moved
	moved.slot = op.slot
	s.diskOps[last] = nil
	s.diskOps = s.diskOps[:last]
	op.st = nil
	op.peerServe = false
	op.bounceT, op.requeueT = nil, nil
	s.diskFree = append(s.diskFree, op)
}

// diskRead submits a read, blocking the main thread (Stall) when the disk
// queue is full — the behaviour at the heart of Figure 4.
func (s *Server) diskRead(op *diskOp) {
	if s.diskTag != nil {
		s.diskTag.SetNextOwner(op)
	}
	if s.disk.Read(diskKey(op.doc), op.onDone) {
		return
	}
	s.env.Stall()
	if s.diskTag != nil {
		s.diskTag.SetNextOwner(op)
	}
	s.disk.NotifySpace(op.notify)
}

// diskDone completes a read in server context.
func (s *Server) diskDone(op *diskOp) {
	s.stats.DiskReads++
	ok, doc := op.ok, op.doc
	if op.peerServe {
		from, id := op.from, op.id
		s.putDiskOp(op)
		s.env.Charge(s.cfg.Cost.DiskDone)
		if ok {
			s.insertCache(doc)
		}
		s.replyPeer(from, id, doc, ok)
		return
	}
	st, gen := op.st, op.stGen
	s.putDiskOp(op)
	s.env.Charge(s.cfg.Cost.DiskDone)
	if ok {
		s.insertCache(doc)
	}
	if st.gen != gen {
		return // request finished (client timeout) while the read was in flight
	}
	s.respond(st, ok)
}

// insertCache caches doc locally and broadcasts the caching decision(s).
func (s *Server) insertCache(doc trace.DocID) {
	evicted, didEvict := s.cache.Insert(doc)
	if s.cfg.Cooperative {
		s.announce(doc, true)
		if didEvict {
			s.announce(evicted, false)
		}
	}
}

// respond sends the answer to the client and releases the slot.
func (s *Server) respond(st *reqState, ok bool) {
	if st.client != nil {
		size := sizeResp
		if ok {
			size += int(s.cfg.Catalog.Size)
		}
		m := NewRespMsg(&s.respPool)
		m.ID, m.OK = st.id, ok
		st.client.TrySend(m, size)
		s.stats.Served++
	}
	s.finish(st, true)
}

// finish tears down request state, recycles it, and pulls the next
// waiter in.
func (s *Server) finish(st *reqState, responded bool) {
	if s.inflight[st.id] == nil {
		return
	}
	delete(s.inflight, st.id)
	if st.client != nil {
		delete(s.clientOf, st.client)
		cnet.ReleaseConn(st.client) // pin taken when admit stored it
	}
	s.putReq(st)
	s.active--
	if s.active < s.cfg.MaxConcurrent && s.QueuedAccepts() > 0 {
		next := s.acceptQ[s.acceptHead]
		s.acceptQ[s.acceptHead] = pendingReq{}
		s.acceptHead++
		if s.acceptHead == len(s.acceptQ) {
			s.acceptQ = s.acceptQ[:0]
			s.acceptHead = 0
		}
		// Admit through the mailbox: the accept backlog drains as a chain
		// of separately charged work items, not one giant handler. The
		// queue entry is popped here, not in the callback, so a client
		// close can still remove a waiter in between.
		op := s.getAdmitOp()
		op.conn, op.msg = next.conn, next.msg
		cnet.RetainConn(op.conn)
		op.runT = s.env.Clock().AfterFunc(0, op.run)
	}
}

// admitOp is a pooled deferred-admission record.
type admitOp struct {
	s    *Server
	conn cnet.Conn
	msg  *ReqMsg
	run  func()

	// Snapshot identity: slot indexes s.admitOps while live; runT is the
	// retained deferred-admission timer handle.
	slot int
	runT timerHandle
}

func (s *Server) getAdmitOp() *admitOp {
	var op *admitOp
	if n := len(s.admitFree); n > 0 {
		op = s.admitFree[n-1]
		s.admitFree = s.admitFree[:n-1]
	} else {
		op = &admitOp{s: s}
		op.run = func() {
			s := op.s
			conn, msg := op.conn, op.msg
			s.putAdmitOp(op)
			s.env.Charge(s.cfg.Cost.Accept)
			s.admit(conn, msg)
			cnet.ReleaseConn(conn) // pin taken when the op captured the conn
		}
	}
	op.slot = len(s.admitOps)
	s.admitOps = append(s.admitOps, op)
	return op
}

func (s *Server) putAdmitOp(op *admitOp) {
	last := len(s.admitOps) - 1
	moved := s.admitOps[last]
	s.admitOps[op.slot] = moved
	moved.slot = op.slot
	s.admitOps[last] = nil
	s.admitOps = s.admitOps[:last]
	// The pin on op.conn is dropped by op.run after admit, not here: run
	// is the only caller, and it still uses the conn after recycling the
	// record.
	op.conn, op.msg, op.runT = nil, nil, nil
	s.admitFree = append(s.admitFree, op)
}

// RestoreDiskDone re-supplies the disk completion callback when this op
// is restored from a snapshot (simdisk's ReadOwner, asserted structurally).
func (op *diskOp) RestoreDiskDone() func(ok bool) { return op.onDone }

// RestoreDiskNotify re-supplies the space-wait callback when this op is
// restored from a snapshot (simdisk's SpaceOwner).
func (op *diskOp) RestoreDiskNotify() func() { return op.notify }
