package server

import (
	"press/internal/cnet"
	"press/internal/trace"
)

// acceptClient handles client-facing (or front-end-forwarded, or
// FME-probe) connections. One request per connection, HTTP/1.0 style.
//
// Shedding happens here, at accept time: when the service slots and the
// backlog are both full, the connection is refused like a kernel
// overflowing its SYN queue — without costing the main coordinating
// thread anything. This keeps heartbeats timely under overload; without
// it, deep overload delays the heartbeat path enough to splinter the
// cluster, which is not a behaviour the paper's testbed exhibited.
func (s *Server) acceptClient(c cnet.Conn) cnet.StreamHandlers {
	if s.active >= s.cfg.MaxConcurrent && len(s.acceptQ) >= s.cfg.AcceptBacklog {
		c.Close()
		return cnet.StreamHandlers{}
	}
	return cnet.StreamHandlers{
		OnMessage: func(c cnet.Conn, m cnet.Message) {
			req, ok := m.(ReqMsg)
			if !ok {
				return
			}
			s.handleRequest(c, req)
		},
		OnClose: func(c cnet.Conn, err error) {
			// Client gave up (timeout) or finished: release anything the
			// request still holds.
			if id, ok := s.clientOf[c]; ok {
				delete(s.clientOf, c)
				if st := s.inflight[id]; st != nil {
					st.client = nil
					s.finish(st, false)
				}
			}
			// Also drop it from the accept queue if it never got a slot.
			for i := range s.acceptQ {
				if s.acceptQ[i].conn == c {
					s.acceptQ = append(s.acceptQ[:i], s.acceptQ[i+1:]...)
					break
				}
			}
		},
	}
}

func (s *Server) handleRequest(c cnet.Conn, req ReqMsg) {
	if req.Probe {
		// FME/S-FME liveness probe: answered inline by the main thread,
		// no slot, reporting the cooperation set.
		s.env.Charge(s.cfg.Cost.Control)
		c.TrySend(RespMsg{ID: req.ID, OK: true, Probe: true, View: s.View()}, sizeResp)
		return
	}
	if s.active >= s.cfg.MaxConcurrent {
		if len(s.acceptQ) >= s.cfg.AcceptBacklog {
			// Listen backlog full: shed the connection cheaply, like a
			// kernel-level refusal, before any parsing happens.
			s.env.Charge(s.cfg.Cost.Control)
			c.Close()
			return
		}
		// No service slot: the request waits unserved. Under a stuck-peer
		// fault this queue is where cluster throughput goes to die. The
		// accept/parse cost is charged on admission.
		s.acceptQ = append(s.acceptQ, pendingReq{conn: c, msg: req})
		return
	}
	s.env.Charge(s.cfg.Cost.Accept)
	s.admit(c, req)
}

func (s *Server) admit(c cnet.Conn, req ReqMsg) {
	s.active++
	s.nextID++
	st := &reqState{id: s.nextID, doc: req.Doc, client: c, forwardedTo: cnet.None}
	s.inflight[st.id] = st
	s.clientOf[c] = st.id
	s.route(st)
}

// route decides how to serve st: local cache, a caching peer, the
// document's home node, or the local disk (§3's request distribution).
func (s *Server) route(st *reqState) {
	if s.cache.Has(st.doc) {
		s.env.Charge(s.cfg.Cost.LocalHit)
		s.stats.LocalHits++
		s.respond(st, true)
		return
	}
	if !s.cfg.Cooperative {
		s.diskRead(st.doc, func(ok bool) { s.localDiskServed(st, ok) })
		return
	}
	if target, ok := s.pickService(st.doc); ok {
		s.forward(st, target)
		return
	}
	s.diskRead(st.doc, func(ok bool) { s.localDiskServed(st, ok) })
}

// pickService chooses the service node for a document we don't cache:
// the least-loaded peer known to cache it, else the document's home node
// (hash placement), unless queue monitoring says to route away.
func (s *Server) pickService(doc trace.DocID) (cnet.NodeID, bool) {
	view := s.sortedView()
	if len(view) <= 1 {
		return cnet.None, false
	}
	var candidates []cnet.NodeID
	for _, n := range view {
		if n != s.cfg.Self {
			candidates = append(candidates, n)
		}
	}
	best := cnet.None
	bestLoad := int(^uint(0) >> 1)
	for _, n := range s.dir.Holders(doc, candidates) {
		if s.qm != nil && s.qm.ShouldReroute(n) {
			s.stats.Rerouted++
			continue
		}
		if l := s.peer(n).load; l < bestLoad {
			best, bestLoad = n, l
		}
	}
	if best != cnet.None {
		return best, true
	}
	home := view[int(doc)%len(view)]
	if home == s.cfg.Self {
		return cnet.None, false
	}
	if s.qm != nil && s.qm.ShouldReroute(home) {
		s.stats.Rerouted++
		return cnet.None, false
	}
	return home, true
}

func (s *Server) forward(st *reqState, target cnet.NodeID) {
	s.env.Charge(s.cfg.Cost.Forward)
	st.forwardedTo = target
	s.stats.ForwardsOut++
	s.enqueue(target, outMsg{
		m:     FwdMsg{ID: st.id, Doc: st.doc, Load: s.active},
		size:  sizeFwd,
		isReq: true,
		reqID: st.id,
	})
}

// completeForwarded handles a service node's reply.
func (s *Server) completeForwarded(from cnet.NodeID, msg FwdReplyMsg) {
	st := s.inflight[msg.ID]
	if st == nil || st.forwardedTo != from {
		return // request already dead (client timeout / rerouted elsewhere)
	}
	s.env.Charge(s.cfg.Cost.Reply)
	s.stats.RemoteServed++
	s.respond(st, msg.OK)
}

// servePeer is the service-node half of a forwarded request.
func (s *Server) servePeer(from cnet.NodeID, msg FwdMsg) {
	reply := func(ok bool) {
		if !s.view[from] {
			return
		}
		s.stats.PeerServes++
		s.enqueue(from, outMsg{
			m:    FwdReplyMsg{ID: msg.ID, Doc: msg.Doc, OK: ok, Load: s.active},
			size: sizeResp + int(s.cfg.Catalog.Size),
		})
	}
	if s.cache.Has(msg.Doc) {
		s.env.Charge(s.cfg.Cost.PeerServe)
		reply(true)
		return
	}
	// Miss at the service node: read and start caching (the announce
	// happens in diskDone).
	s.env.Charge(s.cfg.Cost.PeerServe)
	s.diskRead(msg.Doc, func(ok bool) {
		s.env.Charge(s.cfg.Cost.DiskDone)
		if ok {
			s.insertCache(msg.Doc)
		}
		reply(ok)
	})
}

// diskKey maps a document to its placement key on the local disks. The
// low bits of the document ID drive cooperative-cache ownership (home =
// view[doc mod n]), so the disk placement must use different bits or each
// node would exercise only one of its disks.
func diskKey(doc trace.DocID) int { return int(doc) >> 3 }

// diskRead submits a read, blocking the main thread (Stall) when the disk
// queue is full — the behaviour at the heart of Figure 4. done runs in
// server context.
func (s *Server) diskRead(doc trace.DocID, done func(ok bool)) {
	posted := func(ok bool) {
		// Disk completions arrive from the disk subsystem's context;
		// bounce them through the mailbox.
		s.env.Clock().AfterFunc(0, func() { s.stats.DiskReads++; done(ok) })
	}
	if s.disk.Read(diskKey(doc), posted) {
		return
	}
	// Queue full: the main thread blocks until space frees, then retries
	// this same operation.
	s.env.Stall()
	s.disk.NotifySpace(func() {
		s.env.Resume()
		s.env.Clock().AfterFunc(0, func() { s.diskRead(doc, done) })
	})
}

func (s *Server) localDiskServed(st *reqState, ok bool) {
	s.env.Charge(s.cfg.Cost.DiskDone)
	if ok {
		s.insertCache(st.doc)
	}
	s.respond(st, ok)
}

// insertCache caches doc locally and broadcasts the caching decision(s).
func (s *Server) insertCache(doc trace.DocID) {
	evicted, didEvict := s.cache.Insert(doc)
	if s.cfg.Cooperative {
		s.announce(doc, true)
		if didEvict {
			s.announce(evicted, false)
		}
	}
}

// respond sends the answer to the client and releases the slot.
func (s *Server) respond(st *reqState, ok bool) {
	if st.client != nil {
		size := sizeResp
		if ok {
			size += int(s.cfg.Catalog.Size)
		}
		st.client.TrySend(RespMsg{ID: st.id, OK: ok}, size)
		s.stats.Served++
	}
	s.finish(st, true)
}

// finish tears down request state and pulls the next waiter in.
func (s *Server) finish(st *reqState, responded bool) {
	if s.inflight[st.id] == nil {
		return
	}
	delete(s.inflight, st.id)
	if st.client != nil {
		delete(s.clientOf, st.client)
	}
	st.forwardedTo = cnet.None
	s.active--
	if s.active < s.cfg.MaxConcurrent && len(s.acceptQ) > 0 {
		next := s.acceptQ[0]
		s.acceptQ = s.acceptQ[1:]
		// Admit through the mailbox: the accept backlog drains as a chain
		// of separately charged work items, not one giant handler.
		s.env.Clock().AfterFunc(0, func() {
			s.env.Charge(s.cfg.Cost.Accept)
			s.admit(next.conn, next.msg)
		})
	}
}
