package server_test

import (
	"testing"
	"time"

	"press/internal/metrics"
)

// TestShardedServesAndCooperates: an 8-node cluster on the sharded
// directory protocol must serve a steady load at fault-free availability
// while still cooperating — forwards and remote serves happen even
// though announces go to each document's shard owner instead of the
// whole cluster.
func TestShardedServesAndCooperates(t *testing.T) {
	const n = 8
	tc := newTestCluster(t, clusterOpts{n: n, coop: true, ring: true, sharded: true, rate: 100})
	tc.run(2 * time.Second)
	tc.gen.Start()
	tc.run(60 * time.Second)
	if tc.rec.Offered < 4000 {
		t.Fatalf("offered only %d requests", tc.rec.Offered)
	}
	avail := tc.rec.Availability(10*time.Second, tc.sim.Now()-8*time.Second)
	if avail < 0.999 {
		t.Fatalf("sharded fault-free availability %v (failed=%d connect=%d complete=%d)",
			avail, tc.rec.Failed, tc.rec.ConnectFailures, tc.rec.CompleteFailures)
	}
	var forwards, remote, peerServes uint64
	for i := 0; i < n; i++ {
		st := tc.srv(i).Stats()
		forwards += st.ForwardsOut
		remote += st.RemoteServed
		peerServes += st.PeerServes
	}
	if forwards == 0 || remote == 0 || peerServes == 0 {
		t.Fatalf("no cooperation under sharding: forwards=%d remote=%d peerServes=%d",
			forwards, remote, peerServes)
	}
}

// TestShardedRelayExceedsFirstHops: under the sharded protocol the home
// node relays misses to recorded holders; relays send a FwdMsg without a
// matching first-hop ForwardsOut increment, so across the cluster
// PeerServes replies can exceed what first hops alone would produce.
// The observable contract tested here: every forwarded request still
// completes (RemoteServed on the requester side) and nothing wedges.
func TestShardedRelayCompletes(t *testing.T) {
	const n = 8
	tc := newTestCluster(t, clusterOpts{n: n, coop: true, ring: true, sharded: true, rate: 120})
	tc.run(2 * time.Second)
	tc.gen.Start()
	tc.run(90 * time.Second)
	var remote uint64
	for i := 0; i < n; i++ {
		remote += tc.srv(i).Stats().RemoteServed
	}
	if remote == 0 {
		t.Fatal("no forwarded request ever completed under sharding")
	}
	// Steady state must not leak active slots: with the generator still
	// running, each node's active count stays bounded by its admission
	// limit rather than growing without bound.
	for i := 0; i < n; i++ {
		if a := tc.srv(i).Active(); a > 32 {
			t.Fatalf("node %d active=%d exceeds admission bound", i, a)
		}
	}
}

// TestShardedCrashExcludeRejoin: the faithful fault loop — detect,
// exclude, reintegrate — must behave identically under the sharded
// directory, including dropping the dead node's directory state (no
// forwards routed into the hole) and re-seeding via Hello on rejoin.
func TestShardedCrashExcludeRejoin(t *testing.T) {
	const n = 8
	tc := newTestCluster(t, clusterOpts{n: n, coop: true, ring: true, sharded: true, rate: 100})
	tc.run(2 * time.Second)
	tc.gen.Start()
	tc.run(10 * time.Second)

	crashAt := tc.sim.Now()
	tc.machines[3].Crash()
	tc.run(10 * time.Second)
	for i := 0; i < n; i++ {
		if i == 3 {
			continue
		}
		if got := len(tc.srv(i).View()); got != n-1 {
			t.Fatalf("node %d view size %d after crash, want %d", i, got, n-1)
		}
	}
	if _, ok := tc.log.FirstMatch(crashAt, func(e metrics.Event) bool {
		return e.Kind == metrics.EvDetect && e.Node == 3
	}); !ok {
		t.Fatalf("no detection event for node 3\n%s", tc.log.Dump())
	}

	tc.machines[3].Restart()
	tc.run(8 * time.Second)
	if !viewsEqualAll(tc, n) {
		for i := 0; i < n; i++ {
			t.Logf("node %d view %v", i, tc.srv(i).View())
		}
		t.Fatal("sharded cluster did not reintegrate after restart")
	}
	// Service must have survived the whole episode reasonably: the
	// cluster lost 1/8 capacity briefly, not its ability to serve.
	avail := tc.rec.Availability(crashAt+20*time.Second, tc.sim.Now())
	if avail < 0.99 {
		t.Fatalf("post-reintegration availability %v", avail)
	}
}
