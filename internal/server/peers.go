package server

import (
	"time"

	"press/internal/cnet"
)

// peer holds the intra-cluster plumbing towards one other node. PRESS uses
// a pair of unidirectional streams per node pair: each node dials its own
// send connection and receives on the one the peer dialed. The send queue
// in front of the connection is the structure queue monitoring watches.
type peer struct {
	// Hot fields first: every forward touches conn, the send queue and
	// load, so they share the record's leading cache line; dial/retry
	// state is only walked during fault episodes and sits behind them.
	id       cnet.NodeID
	conn     cnet.Conn // outbound (send) connection; nil until established
	sendQ    []outMsg
	sendHead int // consumed prefix of sendQ (popped without re-slicing)
	reqInQ   int // FwdMsgs among the queued messages
	load     int // piggybacked open-request count
	dialing  bool
	retry    timerHandle

	// Dial and connection callbacks, built once per peer: redialing is hot
	// during fault episodes and must not allocate per attempt.
	h      cnet.StreamHandlers
	onDial func(c cnet.Conn, err error)
	redial func()
}

func (p *peer) qlen() int { return len(p.sendQ) - p.sendHead }

type outMsg struct {
	m     cnet.Message
	size  int
	isReq bool
	reqID uint64 // for requeuing on exclusion; 0 for non-requests
}

// peerAt returns n's peer plumbing, nil when none was ever built —
// the dense-slice counterpart of the old map lookup.
func (s *Server) peerAt(n cnet.NodeID) *peer {
	if n < 0 || int(n) >= len(s.peers) {
		return nil
	}
	return s.peers[n]
}

func (s *Server) setPeer(n cnet.NodeID, p *peer) {
	if int(n) >= len(s.peers) {
		grown := make([]*peer, int(n)+1)
		copy(grown, s.peers)
		s.peers = grown
	}
	s.peers[n] = p
}

func (s *Server) peer(n cnet.NodeID) *peer {
	p := s.peerAt(n)
	if p == nil {
		p = &peer{id: n}
		p.h = cnet.StreamHandlers{
			OnClose: func(c cnet.Conn, err error) {
				if p.conn == c {
					p.conn = nil
					cnet.ReleaseConn(c) // pin taken when onDial stored it
					s.peerConnLost(p.id, err)
				}
			},
			OnWritable: func(c cnet.Conn) { s.drain(p.id) },
		}
		p.onDial = func(c cnet.Conn, err error) {
			p.dialing = false
			if err != nil {
				// The peer application is dead or the node unreachable. Keep
				// retrying while it remains in the view; the detectors decide
				// whether it should stay there.
				if s.inView(p.id) {
					p.retry = s.env.Clock().AfterFunc(2*time.Second, p.redial)
				}
				return
			}
			if !s.inView(p.id) {
				c.Close()
				return
			}
			p.conn = c
			cnet.RetainConn(c) // the record holds the conn across events
			hello := HelloMsg{From: s.cfg.Self, CacheDocs: s.cache.Docs()}
			c.TrySend(hello, sizeHello+4*len(hello.CacheDocs))
			s.drain(p.id)
		}
		p.redial = func() { s.connectPeer(p.id) }
		s.setPeer(n, p)
	}
	return p
}

func (s *Server) peerLoad(n cnet.NodeID, load int) {
	if p := s.peerAt(n); p != nil {
		p.load = load
	} else if s.inView(n) {
		s.peer(n).load = load
	}
}

// connectPeer establishes (or re-establishes) the send connection to n.
func (s *Server) connectPeer(n cnet.NodeID) {
	p := s.peer(n)
	if p.conn != nil || p.dialing {
		return
	}
	p.dialing = true
	s.env.Dial(n, cnet.ClassIntra, PortPress, p.h, p.onDial)
}

// enqueue appends a message to n's send queue and pushes the queue.
func (s *Server) enqueue(n cnet.NodeID, om outMsg) {
	p := s.peer(n)
	p.sendQ = append(p.sendQ, om)
	if om.isReq {
		p.reqInQ++
	}
	s.observeQueue(p)
	if p.conn == nil {
		s.connectPeer(n)
		return
	}
	s.drain(n)
}

// drain pushes queued messages until the connection's window fills.
func (s *Server) drain(n cnet.NodeID) {
	p := s.peerAt(n)
	if p == nil || p.conn == nil {
		return
	}
	for p.sendHead < len(p.sendQ) {
		om := p.sendQ[p.sendHead]
		if !p.conn.TrySend(om.m, om.size) {
			break // flow control: the peer is not reading
		}
		p.sendQ[p.sendHead] = outMsg{}
		p.sendHead++
		if om.isReq {
			p.reqInQ--
		}
	}
	if p.sendHead == len(p.sendQ) {
		// Fully drained: reset so the backing array is reused from the top.
		p.sendQ = p.sendQ[:0]
		p.sendHead = 0
	}
	s.observeQueue(p)
}

func (s *Server) observeQueue(p *peer) {
	if s.qm != nil {
		s.qm.Observe(p.id, p.qlen(), p.reqInQ)
	}
}

// teardown closes the peer's plumbing and empties its send queue. Queued
// requests are rerouted by the caller via the inflight table.
func (p *peer) teardown() {
	p.sendQ = nil
	p.sendHead = 0
	p.reqInQ = 0
	if p.retry != nil {
		p.retry.Stop()
	}
	if p.conn != nil {
		p.conn.Close()
		cnet.ReleaseConn(p.conn) // pin taken when onDial stored it
		p.conn = nil
	}
	p.dialing = false
}

// peerConnLost reacts to the loss of our send connection to n. A reset
// means the peer process crashed (or its machine rebooted): PRESS treats
// that as the peer leaving the cooperation set; it rejoins via the join
// protocol or the membership service.
func (s *Server) peerConnLost(n cnet.NodeID, err error) {
	if !s.inView(n) {
		return
	}
	s.emitDetect(int(n), "conn: "+err.Error())
	s.exclude(n, "connection lost")
}

// inPeer is an inbound peer connection's identity, unknown until its
// Hello arrives. The connection's own handlers capture it, so the hot
// receive path reads a pointer instead of hashing the conn-keyed
// registry per message; inboundFrom stays authoritative for snapshots.
type inPeer struct {
	from  cnet.NodeID
	known bool
}

// acceptPeer handles inbound intra-cluster connections (the peer's send
// connection). The first message must be a Hello identifying the dialer.
func (s *Server) acceptPeer(c cnet.Conn) cnet.StreamHandlers {
	return s.inboundHandlers(&inPeer{})
}

func (s *Server) inboundHandlers(st *inPeer) cnet.StreamHandlers {
	return cnet.StreamHandlers{
		OnMessage: func(c cnet.Conn, m cnet.Message) { s.onPeerMsg(st, c, m) },
		OnClose:   func(c cnet.Conn, err error) { s.onPeerClose(st, c, err) },
	}
}

func (s *Server) onPeerClose(st *inPeer, c cnet.Conn, err error) {
	delete(s.inboundFrom, c)
	if st.known {
		s.peerConnLost(st.from, err)
	}
}

func (s *Server) onPeerMsg(st *inPeer, c cnet.Conn, m cnet.Message) {
	from, known := st.from, st.known
	switch msg := m.(type) {
	case HelloMsg:
		s.env.Charge(s.cfg.Cost.Control)
		st.from, st.known = msg.From, true
		s.inboundFrom[c] = msg.From
		for _, d := range msg.CacheDocs {
			// Sharded directory: only record the shards this node owns;
			// the rest of the Hello is directory state for other homes.
			if s.cfg.Sharded && s.shardOwner(d) != s.cfg.Self {
				continue
			}
			s.dir.Set(msg.From, d, true)
		}
		// A Hello from a node outside the view is a (re)joining member:
		// NodeIn. (Base PRESS: the rejoining node re-establishes the
		// intra-cluster connections.)
		s.include(msg.From, "hello")
	case *FwdMsg:
		if known {
			s.peerLoad(from, msg.Load)
			s.servePeer(from, msg)
		}
		msg.Release()
	case *FwdReplyMsg:
		if known {
			s.peerLoad(from, msg.Load)
			s.completeForwarded(from, msg)
		}
		msg.Release()
	}
}
