package server_test

import (
	"testing"
	"time"

	"press/internal/cnet"
	"press/internal/metrics"
	"press/internal/server"
)

// TestRejoinWhenLowestNodeDead: the join protocol's responder is the
// lowest-ID *active* member; a restarting node must still get a view when
// node 0 is down.
func TestRejoinWhenLowestNodeDead(t *testing.T) {
	tc := newTestCluster(t, clusterOpts{n: 4, coop: true, ring: true})
	tc.run(3 * time.Second)
	tc.machines[0].Crash() // node 0 gone for good (this test never repairs it)
	tc.run(8 * time.Second)
	tc.machines[1].KillProc("press")
	tc.run(2 * time.Second)
	tc.machines[1].StartProc("press")
	tc.run(8 * time.Second)
	// Node 1 must have rejoined {1,2,3} via node 1's JoinReq answered by
	// node 2 (the lowest active member at that moment) or via hellos.
	if got := len(tc.srv(1).View()); got != 3 {
		t.Fatalf("restarted node view size %d, want 3\n%s", got, tc.log.Dump())
	}
	for _, i := range []int{2, 3} {
		if got := len(tc.srv(i).View()); got != 3 {
			t.Fatalf("node %d view size %d, want 3", i, got)
		}
	}
}

// TestSwitchDownSplintersCoopIntoSingletons: with the intra switch out,
// every node ends up alone (and keeps serving its share).
func TestSwitchDownSplintersCoopIntoSingletons(t *testing.T) {
	tc := newTestCluster(t, clusterOpts{n: 4, coop: true, ring: true, rate: 40})
	tc.run(2 * time.Second)
	tc.gen.Start()
	tc.run(5 * time.Second)
	tc.net.SetSwitch(false)
	tc.run(15 * time.Second)
	for i := 0; i < 4; i++ {
		if got := len(tc.srv(i).View()); got != 1 {
			t.Fatalf("node %d view size %d under switch outage, want 1", i, got)
		}
	}
	// Clients are on the (unaffected) access network: service continues
	// at independent-server quality, not zero.
	av := tc.rec.Availability(tc.sim.Now()-5*time.Second, tc.sim.Now()-2*time.Second)
	if av < 0.15 {
		t.Fatalf("availability %v under switch outage; singletons should still serve", av)
	}
}

// TestINDEPIgnoresIntraFaults: the independent version has no intra
// traffic at all, so intra faults are free.
func TestINDEPIgnoresIntraFaults(t *testing.T) {
	tc := newTestCluster(t, clusterOpts{n: 4, coop: false, rate: 40})
	tc.gen.Start()
	tc.run(10 * time.Second)
	tc.net.SetSwitch(false)
	tc.machines[2].Iface().SetLink(false)
	tc.run(20 * time.Second)
	av := tc.rec.Availability(12*time.Second, tc.sim.Now()-8*time.Second)
	if av < 0.999 {
		t.Fatalf("INDEP availability %v under intra faults, want ~1", av)
	}
}

// fakeMembership drives the server's external membership view directly.
type fakeMembership struct {
	subs []func([]cnet.NodeID)
}

func (f *fakeMembership) Subscribe(fn func(members []cnet.NodeID)) {
	f.subs = append(f.subs, fn)
}

func (f *fakeMembership) publish(members []cnet.NodeID) {
	for _, fn := range f.subs {
		fn(members)
	}
}

// TestMembershipViewDrivesCooperationSet: NodeOut excludes, NodeIn
// re-includes, and re-inclusion overrides a queue-monitoring verdict —
// the §4.4 seam, exercised deterministically.
func TestMembershipViewDrivesCooperationSet(t *testing.T) {
	fms := make([]*fakeMembership, 4)
	idx := 0
	tc := newTestCluster(t, clusterOpts{
		n: 4, coop: true, ring: false, qmon: true, rate: 40,
		memb: func(node cnet.NodeID) server.MembershipView {
			fm := &fakeMembership{}
			fms[idx] = fm
			idx++
			return fm
		},
	})
	tc.run(3 * time.Second)
	all := []cnet.NodeID{0, 1, 2, 3}
	for _, fm := range fms {
		fm.publish(all)
	}
	tc.run(2 * time.Second)
	if got := len(tc.srv(0).View()); got != 4 {
		t.Fatalf("view %d after full publish", got)
	}
	// NodeOut for node 3 everywhere.
	for i, fm := range fms {
		if i != 3 {
			fm.publish([]cnet.NodeID{0, 1, 2})
		}
	}
	tc.run(2 * time.Second)
	for _, i := range []int{0, 1, 2} {
		for _, v := range tc.srv(i).View() {
			if v == 3 {
				t.Fatalf("node %d still lists 3 after NodeOut", i)
			}
		}
	}
	// NodeIn again.
	for i, fm := range fms {
		if i != 3 {
			fm.publish(all)
		}
	}
	tc.run(3 * time.Second)
	for _, i := range []int{0, 1, 2} {
		if got := len(tc.srv(i).View()); got != 4 {
			t.Fatalf("node %d view %d after NodeIn", i, got)
		}
	}
}

// TestProbeWhileStalledGetsNoAnswer: the FME probe must observe a
// disk-blocked main thread as unresponsive.
func TestProbeWhileStalledGetsNoAnswer(t *testing.T) {
	tc := newTestCluster(t, clusterOpts{n: 4, coop: true, ring: true, rate: 80})
	tc.run(2 * time.Second)
	tc.gen.Start()
	tc.run(20 * time.Second)
	for _, d := range tc.machines[1].Disks().Disks() {
		d.SetFaulty(true)
	}
	// Wait until the main thread blocks.
	deadline := tc.sim.Now() + 60*time.Second
	for tc.sim.Now() < deadline && !tc.machines[1].Proc("press").Stalled() {
		tc.run(time.Second)
	}
	if !tc.machines[1].Proc("press").Stalled() {
		t.Fatal("main thread never blocked on the dead disks")
	}
	probe := tc.net.AddIface(501)
	answered := false
	probe.Dial(1, cnet.ClassClient, server.PortHTTP, cnet.StreamHandlers{
		OnMessage: func(c cnet.Conn, m cnet.Message) { answered = true },
	}, func(c cnet.Conn, err error) {
		if err != nil {
			t.Errorf("probe dial should succeed against a stalled app (backlog): %v", err)
			return
		}
		c.TrySend(&server.ReqMsg{ID: 1, Probe: true}, 64)
	})
	tc.run(10 * time.Second)
	if answered {
		t.Fatal("stalled main thread answered the probe")
	}
}

// TestExclusionRequeuesInflightForwards: when a peer dies with forwards
// outstanding, the initial node reroutes them (locally or to another
// holder) rather than letting every one die by client timeout.
func TestExclusionRequeuesInflightForwards(t *testing.T) {
	tc := newTestCluster(t, clusterOpts{n: 4, coop: true, ring: true, rate: 60, hbPeriod: 500 * time.Millisecond})
	tc.run(2 * time.Second)
	tc.gen.Start()
	tc.run(10 * time.Second)
	okBefore := tc.rec.Succeeded
	tc.machines[2].Crash()
	tc.run(15 * time.Second)
	// Fast ring (0.5s hb): exclusion within ~2s, so most in-flight work is
	// rerouted and availability stays well above the wedge level.
	av := tc.rec.Availability(tc.sim.Now()-10*time.Second, tc.sim.Now()-5*time.Second)
	if av < 0.5 {
		t.Fatalf("availability %v after fast exclusion; requeue ineffective", av)
	}
	if tc.rec.Succeeded == okBefore {
		t.Fatal("nothing served after the crash")
	}
	if _, ok := tc.log.FirstMatch(0, func(e metrics.Event) bool {
		return e.Kind == metrics.EvExclude && e.Node == 2
	}); !ok {
		t.Fatal("no exclusion recorded")
	}
}
