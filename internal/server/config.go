// Package server implements PRESS (§3), the locality-conscious
// cluster-based web server whose availability the paper studies, in both
// of the paper's arrangements:
//
//   - COOP: nodes cooperate to manage the cluster's memory as one cache.
//     Any node may receive a request (the initial node); it serves locally
//     on a cache hit, otherwise forwards to the service node chosen from
//     the caching directory and piggybacked load information. Caching
//     decisions are broadcast; heartbeats run around a directed ring; a
//     restarted node rejoins by broadcast.
//
//   - INDEP: the same server with all cooperation disabled; every node
//     serves only from its own cache and disks.
//
// The availability subsystems bolt on without changing this package's
// core logic, mirroring the paper's evolutionary approach: the built-in
// ring detector can be switched off in favour of an external membership
// view, and queue monitoring (package qmon) observes the per-peer send
// queues this package already maintains.
package server

import (
	"time"

	"press/internal/cnet"
	"press/internal/qmon"
	"press/internal/trace"
)

// Well-known port names.
const (
	PortHTTP    = "http"     // client-class: requests from clients / front-end / FME probe
	PortPress   = "press"    // intra-class streams: forwards, replies, directory
	PortHB      = "hb"       // intra-class datagrams: ring heartbeats
	PortControl = "pressctl" // intra-class datagrams: exclude broadcasts, join protocol
)

// CostModel carries the CPU time charged on the main coordinating thread
// for each kind of work. Values are at the simulation's time scale (~10x
// 2003 hardware); only their ratios to the disk service time and to each
// other matter.
type CostModel struct {
	Accept    time.Duration // accept + parse one client request
	LocalHit  time.Duration // serve a request from the local cache (incl. reply to client)
	Forward   time.Duration // enqueue + send one forward to a peer
	PeerServe time.Duration // service-node work for a forwarded request (cache hit)
	Reply     time.Duration // initial-node work to relay a peer's reply to the client
	DiskDone  time.Duration // post-disk-read bookkeeping (cache insert + announce)
	Control   time.Duration // heartbeat / announcement / directory message handling
}

// DefaultCosts yields roughly 11 ms of main-thread CPU per request in the
// cooperative configuration, making a 4-node cluster saturate near 360
// req/s while the independent version is disk-bound near 120 req/s — the
// paper's 3x cooperation factor.
func DefaultCosts() CostModel {
	return CostModel{
		Accept:    4 * time.Millisecond,
		LocalHit:  6 * time.Millisecond,
		Forward:   1500 * time.Microsecond,
		PeerServe: 4 * time.Millisecond,
		Reply:     3500 * time.Microsecond,
		DiskDone:  2 * time.Millisecond,
		Control:   200 * time.Microsecond,
	}
}

// Config assembles one PRESS server process.
type Config struct {
	// Self is this node; Nodes is the static cluster (cold-start view).
	Self  cnet.NodeID
	Nodes []cnet.NodeID

	// Cooperative selects COOP (true) or INDEP (false).
	Cooperative bool

	// Sharded switches the caching directory from the faithful
	// broadcast protocol to the scale-out partitioned one: caching
	// decisions go only to the document's home node (hash placement),
	// which relays misses to a known holder on the requester's behalf.
	// Per-insert directory traffic drops from O(N) to O(1), which is
	// what lets the protocol suite run at hundreds of nodes.
	Sharded bool

	// RingDetector enables PRESS's built-in directed-ring heartbeat fault
	// detector (§3). The MEM/QMON/... versions disable it and rely on
	// their subsystems instead.
	RingDetector    bool
	HeartbeatPeriod time.Duration // default 5s
	HeartbeatMiss   int           // consecutive losses ⇒ peer down (default 3)

	// JoinTimeout bounds the rejoin broadcast wait; if no member answers,
	// the node assumes a cold start and adopts the static view.
	JoinTimeout time.Duration

	// CacheBytes is the local file-cache capacity.
	CacheBytes int64
	// Catalog describes the (fully replicated) document set.
	Catalog *trace.Catalog

	// MaxConcurrent bounds requests in service; beyond it, arrivals queue
	// unserved (and typically die by client timeout). This is the resource
	// through which a stuck peer stalls the whole cluster.
	MaxConcurrent int

	// AcceptBacklog bounds the queue of accepted-but-unserved requests
	// (the listen backlog); beyond it new connections are rejected.
	AcceptBacklog int

	// QMon enables queue monitoring when non-nil.
	QMon *qmon.Config

	// MembershipPoll is the period at which the membership client library
	// re-publishes the external view to the server (§4.2's shared-memory
	// segment poll). Used only when a MembershipView is supplied.
	MembershipPoll time.Duration

	Cost CostModel
}

// withDefaults fills zero fields.
func (c Config) withDefaults() Config {
	if c.HeartbeatPeriod <= 0 {
		c.HeartbeatPeriod = 5 * time.Second
	}
	if c.HeartbeatMiss <= 0 {
		c.HeartbeatMiss = 3
	}
	if c.JoinTimeout <= 0 {
		c.JoinTimeout = 2 * time.Second
	}
	if c.Catalog == nil {
		c.Catalog = trace.Default()
	}
	if c.CacheBytes <= 0 {
		c.CacheBytes = 128 << 20
	}
	if c.MaxConcurrent <= 0 {
		c.MaxConcurrent = 32
	}
	if c.AcceptBacklog <= 0 {
		c.AcceptBacklog = 4 * c.MaxConcurrent
	}
	if c.MembershipPoll <= 0 {
		c.MembershipPoll = time.Second
	}
	if c.Cost == (CostModel{}) {
		c.Cost = DefaultCosts()
	}
	return c
}

// MembershipView is the membership client library surface the server
// consumes (§4.2). Subscribe's callback runs in server context on every
// poll of the published view, with the full member list.
type MembershipView interface {
	Subscribe(fn func(members []cnet.NodeID))
}

// DiskArray is the disk subsystem surface the server needs (implemented
// by simdisk.Array and by livenet's memory-backed stand-in).
type DiskArray interface {
	// Read submits a read keyed by document; reports false when the queue
	// is full (the caller must stall).
	Read(key int, done func(ok bool)) bool
	// NotifySpace registers a one-shot wakeup for queue space.
	NotifySpace(fn func())
}
