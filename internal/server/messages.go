package server

import (
	"press/internal/cnet"
	"press/internal/trace"
)

// Wire messages. All are exported gob-encodable structs so the same
// protocol runs over livenet's real TCP.
//
// The per-request types (ReqMsg, RespMsg, FwdMsg, FwdReplyMsg,
// AnnounceMsg, HBMsg) travel as pointers and recycle through cnet.MsgPool
// free lists: the sender takes a record from its pool, the final consumer
// calls Release. A record whose home pool is unset (a plain &ReqMsg{...}
// literal on a cold path, or a gob-decoded copy on the livenet receive
// side) just leaks to the GC on Release, which is the old behaviour.

// ReqMsg is a client HTTP request. Probe requests are FME's liveness
// checks: they are answered immediately by the main thread without
// occupying a request slot, so they test exactly "is the main thread
// making progress".
type ReqMsg struct {
	ID    uint64
	Doc   trace.DocID
	Probe bool

	home *cnet.MsgPool[ReqMsg]
}

// NewReqMsg takes a zeroed request record from pool.
func NewReqMsg(pool *cnet.MsgPool[ReqMsg]) *ReqMsg {
	m := pool.Get()
	m.home = pool
	return m
}

// Release recycles the record into its home pool (no-op without one).
func (m *ReqMsg) Release() {
	if h := m.home; h != nil {
		*m = ReqMsg{home: h}
		h.Put(m)
	}
}

// RespMsg answers a ReqMsg on the client connection. Its wire size is the
// document size for real requests. Probe responses carry the server's
// current cooperation set, which the S-FME front-end monitor uses to spot
// isolated nodes (§6.2).
type RespMsg struct {
	ID    uint64
	OK    bool
	Probe bool
	View  []cnet.NodeID

	home *cnet.MsgPool[RespMsg]
}

// NewRespMsg takes a zeroed response record from pool.
func NewRespMsg(pool *cnet.MsgPool[RespMsg]) *RespMsg {
	m := pool.Get()
	m.home = pool
	return m
}

// Release recycles the record into its home pool (no-op without one).
// Retaining m.View past Release is safe: the slice is never reused, only
// the header field is cleared.
func (m *RespMsg) Release() {
	if h := m.home; h != nil {
		*m = RespMsg{home: h}
		h.Put(m)
	}
}

// HelloMsg identifies the sender on a freshly dialed intra-cluster
// connection; CacheDocs carries the sender's current cache contents so the
// receiver can seed its directory (the paper's "the rejoining node is sent
// the caching information of the respective node" — symmetric here).
type HelloMsg struct {
	From      cnet.NodeID
	CacheDocs []trace.DocID
}

// FwdMsg forwards a request from the initial node to the service node.
// In the sharded directory protocol a home node that misses locally
// relays the forward to a known holder with Origin set to the initial
// node, and the holder replies to Origin directly. Origin is cnet.None
// on a first-hop forward; because pool recycling zeroes the record (and
// NodeID 0 is a real node), every send site must set it explicitly.
type FwdMsg struct {
	ID     uint64
	Doc    trace.DocID
	Load   int // piggybacked open-request count of the sender
	Origin cnet.NodeID

	home *cnet.MsgPool[FwdMsg]
}

// NewFwdMsg takes a zeroed forward record from pool.
func NewFwdMsg(pool *cnet.MsgPool[FwdMsg]) *FwdMsg {
	m := pool.Get()
	m.home = pool
	return m
}

// Release recycles the record into its home pool (no-op without one).
func (m *FwdMsg) Release() {
	if h := m.home; h != nil {
		*m = FwdMsg{home: h}
		h.Put(m)
	}
}

// FwdReplyMsg returns the document to the initial node; its wire size is
// the document size.
type FwdReplyMsg struct {
	ID   uint64
	Doc  trace.DocID
	OK   bool
	Load int

	home *cnet.MsgPool[FwdReplyMsg]
}

// NewFwdReplyMsg takes a zeroed reply record from pool.
func NewFwdReplyMsg(pool *cnet.MsgPool[FwdReplyMsg]) *FwdReplyMsg {
	m := pool.Get()
	m.home = pool
	return m
}

// Release recycles the record into its home pool (no-op without one).
func (m *FwdReplyMsg) Release() {
	if h := m.home; h != nil {
		*m = FwdReplyMsg{home: h}
		h.Put(m)
	}
}

// AnnounceMsg broadcasts a caching decision (start caching / evict).
type AnnounceMsg struct {
	From   cnet.NodeID
	Doc    trace.DocID
	Cached bool
	Load   int

	home *cnet.MsgPool[AnnounceMsg]
}

// NewAnnounceMsg takes a zeroed announce record from pool.
func NewAnnounceMsg(pool *cnet.MsgPool[AnnounceMsg]) *AnnounceMsg {
	m := pool.Get()
	m.home = pool
	return m
}

// Release recycles the record into its home pool (no-op without one).
func (m *AnnounceMsg) Release() {
	if h := m.home; h != nil {
		*m = AnnounceMsg{home: h}
		h.Put(m)
	}
}

// HBMsg is a ring heartbeat.
type HBMsg struct {
	From cnet.NodeID
	Load int

	home *cnet.MsgPool[HBMsg]
}

// NewHBMsg takes a zeroed heartbeat record from pool.
func NewHBMsg(pool *cnet.MsgPool[HBMsg]) *HBMsg {
	m := pool.Get()
	m.home = pool
	return m
}

// Release recycles the record into its home pool (no-op without one).
func (m *HBMsg) Release() {
	if h := m.home; h != nil {
		*m = HBMsg{home: h}
		h.Put(m)
	}
}

// ExcludeMsg is broadcast by the ring detector when it declares a node
// dead, so the rest of the ring reconfigures at once.
type ExcludeMsg struct {
	From cnet.NodeID
	Dead cnet.NodeID
}

// JoinReqMsg is broadcast by a (re)starting node.
type JoinReqMsg struct {
	From cnet.NodeID
}

// JoinRespMsg is sent by the lowest-ID active member with the current
// configuration.
type JoinRespMsg struct {
	From cnet.NodeID
	View []cnet.NodeID
}

// approximate wire sizes (bytes) for the simulator's bandwidth model.
const (
	sizeReq     = 256
	sizeResp    = 128 // headers; body size added separately
	sizeFwd     = 192
	sizeHello   = 64 // plus 4 bytes per directory entry
	sizeHB      = 48
	sizeControl = 64
)
