package server

import (
	"press/internal/cnet"
	"press/internal/trace"
)

// Wire messages. All are exported gob-encodable structs so the same
// protocol runs over livenet's real TCP.

// ReqMsg is a client HTTP request. Probe requests are FME's liveness
// checks: they are answered immediately by the main thread without
// occupying a request slot, so they test exactly "is the main thread
// making progress".
type ReqMsg struct {
	ID    uint64
	Doc   trace.DocID
	Probe bool
}

// RespMsg answers a ReqMsg on the client connection. Its wire size is the
// document size for real requests. Probe responses carry the server's
// current cooperation set, which the S-FME front-end monitor uses to spot
// isolated nodes (§6.2).
type RespMsg struct {
	ID    uint64
	OK    bool
	Probe bool
	View  []cnet.NodeID
}

// HelloMsg identifies the sender on a freshly dialed intra-cluster
// connection; CacheDocs carries the sender's current cache contents so the
// receiver can seed its directory (the paper's "the rejoining node is sent
// the caching information of the respective node" — symmetric here).
type HelloMsg struct {
	From      cnet.NodeID
	CacheDocs []trace.DocID
}

// FwdMsg forwards a request from the initial node to the service node.
type FwdMsg struct {
	ID   uint64
	Doc  trace.DocID
	Load int // piggybacked open-request count of the sender
}

// FwdReplyMsg returns the document to the initial node; its wire size is
// the document size.
type FwdReplyMsg struct {
	ID   uint64
	Doc  trace.DocID
	OK   bool
	Load int
}

// AnnounceMsg broadcasts a caching decision (start caching / evict).
type AnnounceMsg struct {
	From   cnet.NodeID
	Doc    trace.DocID
	Cached bool
	Load   int
}

// HBMsg is a ring heartbeat.
type HBMsg struct {
	From cnet.NodeID
	Load int
}

// ExcludeMsg is broadcast by the ring detector when it declares a node
// dead, so the rest of the ring reconfigures at once.
type ExcludeMsg struct {
	From cnet.NodeID
	Dead cnet.NodeID
}

// JoinReqMsg is broadcast by a (re)starting node.
type JoinReqMsg struct {
	From cnet.NodeID
}

// JoinRespMsg is sent by the lowest-ID active member with the current
// configuration.
type JoinRespMsg struct {
	From cnet.NodeID
	View []cnet.NodeID
}

// approximate wire sizes (bytes) for the simulator's bandwidth model.
const (
	sizeReq     = 256
	sizeResp    = 128 // headers; body size added separately
	sizeFwd     = 192
	sizeHello   = 64 // plus 4 bytes per directory entry
	sizeHB      = 48
	sizeControl = 64
)
