// Package fme implements Fault Model Enforcement (§4.5): a per-node
// daemon that transforms faults outside the service's abstract fault
// model (disk timeouts, application hangs) into faults inside it (node
// crash, application crash-restart), so that the membership service and
// queue monitoring — whose views otherwise diverge — converge on a single
// consistent picture.
//
// The daemon periodically (i) probes the local disks through the SCSI
// generic interface and (ii) probes the local application server with
// simple HTTP requests. The paper's translation rules:
//
//   - disk faulty AND application unresponsive → take the whole node
//     offline for repair (the disk fault has wedged the server; a node
//     crash is something every subsystem understands);
//   - application unresponsive AND disk healthy → restart the application
//     process, converting a hang into a crash-restart sequence.
//
// A probe that is *refused* (nothing listening) means the application
// already crashed; that is inside the fault model and is left to the
// ordinary restart path, so the daemon takes no action for it.
package fme

import (
	"errors"
	"fmt"
	"time"

	"press/internal/clock"
	"press/internal/cnet"
	"press/internal/metrics"
	"press/internal/server"
)

// Control is the node-control surface the daemon acts through. The
// simulator backs it with machine.Machine; livenet with process handles.
type Control interface {
	// TakeOffline removes the whole node from service until repair.
	TakeOffline(reason string)
	// RestartApp kills and restarts the application process.
	RestartApp()
}

// Disk is the probe surface of the local disk subsystem.
type Disk interface {
	// Probe health-checks the disks, bypassing the request queue.
	Probe(timeout time.Duration, done func(healthy bool))
}

// Config parameterizes the daemon.
type Config struct {
	Self cnet.NodeID
	// ProbePeriod is the paper's 5 s test cadence.
	ProbePeriod time.Duration
	// ProbeTimeout bounds the HTTP probe (and the SCSI probe).
	ProbeTimeout time.Duration
	// Consecutive is how many consecutive unresponsive probes establish
	// "the application fails to respond" (hysteresis against transient
	// overload).
	Consecutive int
}

func (c Config) withDefaults() Config {
	if c.ProbePeriod <= 0 {
		c.ProbePeriod = 5 * time.Second
	}
	if c.ProbeTimeout <= 0 {
		c.ProbeTimeout = 2 * time.Second
	}
	if c.Consecutive <= 0 {
		c.Consecutive = 2
	}
	return c
}

// Daemon is one node's FME process.
type Daemon struct {
	cfg  Config
	src  metrics.SourceID // interned "fme/<self>" tag
	env  cnet.Env
	disk Disk
	ctl  Control

	appStrikes int // consecutive unresponsive HTTP probes
	probeSeq   uint64
	actions    uint64

	// probeT drives the probe loop. Each tick suppresses the automatic
	// rearm (Stop) and the asynchronous decide() revives the ticker once
	// both probe verdicts are in, so the next tick is a full ProbePeriod
	// after the decision, not after the probes were sent.
	probeT clock.Ticker
}

// NewDaemon starts the FME daemon.
func NewDaemon(cfg Config, env cnet.Env, disk Disk, ctl Control) *Daemon {
	d := &Daemon{cfg: cfg.withDefaults(), env: env, disk: disk, ctl: ctl}
	d.src = metrics.InternSource(fmt.Sprintf("fme/%d", d.cfg.Self))
	d.probeT = d.env.Clock().Every(d.cfg.ProbePeriod, d.tick)
	return d
}

// Actions returns how many fault translations the daemon performed.
func (d *Daemon) Actions() uint64 { return d.actions }

func (d *Daemon) emit(detail string) {
	d.env.Events().EmitID(d.env.Clock().Now(), d.src, metrics.KFMEAction, int(d.cfg.Self), detail)
}

// appProbeResult classifies one HTTP probe.
type appProbeResult int

const (
	appResponsive   appProbeResult = iota
	appUnresponsive                // connected (or timed out connecting) but no answer: hang
	appDead                        // connection refused: crash, outside our jurisdiction
)

func (d *Daemon) tick() {
	// Suppress the automatic rearm up front: decide() revives the ticker,
	// and doing it first keeps a synchronous probe completion safe.
	d.probeT.Stop()
	var (
		diskHealthy *bool
		appState    *appProbeResult
	)
	decide := func() {
		if diskHealthy == nil || appState == nil {
			return
		}
		d.decide(*diskHealthy, *appState)
		d.probeT.Reschedule(d.cfg.ProbePeriod)
	}
	d.disk.Probe(d.cfg.ProbeTimeout, func(h bool) {
		diskHealthy = &h
		decide()
	})
	d.probeApp(func(r appProbeResult) {
		appState = &r
		decide()
	})
}

// probeApp sends one HTTP probe to the local server.
func (d *Daemon) probeApp(done func(appProbeResult)) {
	finished := false
	finish := func(r appProbeResult) {
		if finished {
			return
		}
		finished = true
		done(r)
	}
	d.probeSeq++
	var conn cnet.Conn
	d.env.Clock().AfterFunc(d.cfg.ProbeTimeout, func() {
		if conn != nil {
			conn.Close()
			cnet.ReleaseConn(conn) // pin taken when the dial stored it
		}
		finish(appUnresponsive)
	})
	h := cnet.StreamHandlers{
		OnMessage: func(c cnet.Conn, m cnet.Message) {
			if resp, ok := m.(*server.RespMsg); ok && resp.Probe {
				resp.Release()
				c.Close()
				finish(appResponsive)
			}
		},
		OnClose: func(c cnet.Conn, err error) {
			if errors.Is(err, cnet.ErrReset) {
				finish(appDead)
			}
		},
	}
	d.env.Dial(d.env.Local(), cnet.ClassClient, server.PortHTTP, h, func(c cnet.Conn, err error) {
		if err != nil {
			if errors.Is(err, cnet.ErrRefused) {
				finish(appDead)
				return
			}
			finish(appUnresponsive)
			return
		}
		conn = c
		cnet.RetainConn(c) // held across events until the timeout fires
		c.TrySend(&server.ReqMsg{ID: d.probeSeq, Probe: true}, 64)
	})
}

// decide applies the translation rules.
func (d *Daemon) decide(diskHealthy bool, app appProbeResult) {
	if app == appUnresponsive {
		d.appStrikes++
	} else {
		d.appStrikes = 0
	}
	switch {
	case !diskHealthy && d.appStrikes >= d.cfg.Consecutive:
		// Rule 1: disk fault wedged the application → node crash.
		d.actions++
		d.emit("disk faulty + app unresponsive: taking node offline")
		d.appStrikes = 0
		d.ctl.TakeOffline("fme: disk failure")
	case diskHealthy && d.appStrikes >= d.cfg.Consecutive:
		// Rule 2: hang with a healthy disk → crash-restart.
		d.actions++
		d.emit("app unresponsive, disk healthy: restarting application")
		d.appStrikes = 0
		d.ctl.RestartApp()
	}
}
