package fme_test

import (
	"testing"
	"time"

	"press/internal/cnet"
	"press/internal/fme"
	"press/internal/machine"
	"press/internal/metrics"
	"press/internal/server"
	"press/internal/sim"
	"press/internal/simdisk"
	"press/internal/simnet"
	"press/internal/trace"
)

// machineControl adapts a simulated machine to fme.Control the way the
// harness does.
type machineControl struct {
	s   *sim.Sim
	m   *machine.Machine
	app string

	offlines int
	restarts int
}

func (c *machineControl) TakeOffline(reason string) {
	c.offlines++
	c.m.TakeOffline(reason)
}

func (c *machineControl) RestartApp() {
	c.restarts++
	c.m.KillProc(c.app)
	c.s.After(10*time.Second, func() { c.m.StartProc(c.app) })
}

type fixture struct {
	sim   *sim.Sim
	log   *metrics.Log
	m     *machine.Machine
	disks *simdisk.Array
	ctl   *machineControl
	d     *fme.Daemon
}

func newFixture(t *testing.T) *fixture {
	t.Helper()
	s := sim.New(3)
	log := &metrics.Log{}
	net := simnet.New(s, simnet.DefaultConfig(), log)
	disks := simdisk.NewArray(s, s.NewRand("d"), simdisk.Config{MeanService: 20 * time.Millisecond, QueueCap: 8, Workers: 2}, 2)
	m := machine.New(s, net, 0, disks, log)
	cat := trace.NewCatalog(100, 27*1024, 0.8)
	m.AddProc("press", func(env *machine.Env) {
		server.New(server.Config{
			Self: 0, Nodes: []cnet.NodeID{0}, Cooperative: false, Catalog: cat,
		}, env, disks, nil)
	})
	ctl := &machineControl{s: s, m: m, app: "press"}
	fx := &fixture{sim: s, log: log, m: m, disks: disks, ctl: ctl}
	m.AddProc("fme", func(env *machine.Env) {
		fx.d = fme.NewDaemon(fme.Config{
			Self:        0,
			ProbePeriod: time.Second,
			Consecutive: 2,
		}, env, disks, ctl)
	})
	return fx
}

func TestHealthyNodeNoActions(t *testing.T) {
	fx := newFixture(t)
	fx.sim.RunFor(60 * time.Second)
	if fx.ctl.offlines != 0 || fx.ctl.restarts != 0 {
		t.Fatalf("actions on healthy node: offlines=%d restarts=%d", fx.ctl.offlines, fx.ctl.restarts)
	}
}

func TestHangTranslatedToRestart(t *testing.T) {
	fx := newFixture(t)
	fx.sim.RunFor(5 * time.Second)
	fx.m.Proc("press").Hang()
	fx.sim.RunFor(15 * time.Second)
	if fx.ctl.restarts != 1 {
		t.Fatalf("restarts = %d, want 1", fx.ctl.restarts)
	}
	if fx.ctl.offlines != 0 {
		t.Fatalf("offlines = %d on a healthy disk", fx.ctl.offlines)
	}
	// After the restart delay the app is back and responsive: no more
	// actions accumulate.
	fx.sim.RunFor(60 * time.Second)
	if fx.ctl.restarts != 1 {
		t.Fatalf("extra restarts: %d", fx.ctl.restarts)
	}
	if !fx.m.Proc("press").Alive() || fx.m.Proc("press").Hung() {
		t.Fatal("app not healthy after crash-restart translation")
	}
	if _, ok := fx.log.First(metrics.EvFMEAction, 0); !ok {
		t.Fatal("no FME action event logged")
	}
}

func TestDiskFaultPlusWedgeTakesNodeOffline(t *testing.T) {
	fx := newFixture(t)
	fx.sim.RunFor(5 * time.Second)
	for _, d := range fx.disks.Disks() {
		d.SetFaulty(true)
	}
	// Wedge the app the way a full disk queue eventually does.
	fx.m.Proc("press").Hang()
	fx.sim.RunFor(15 * time.Second)
	if fx.ctl.offlines != 1 {
		t.Fatalf("offlines = %d, want 1", fx.ctl.offlines)
	}
	if fx.ctl.restarts != 0 {
		t.Fatalf("restarts = %d; a doomed restart on a bad disk", fx.ctl.restarts)
	}
	if fx.m.Up() {
		t.Fatal("node still up")
	}
}

func TestDiskFaultAloneWaits(t *testing.T) {
	fx := newFixture(t)
	fx.sim.RunFor(5 * time.Second)
	fx.disks.Disks()[0].SetFaulty(true)
	// The app still answers probes (no load, queue empty): FME must wait.
	fx.sim.RunFor(30 * time.Second)
	if fx.ctl.offlines != 0 || fx.ctl.restarts != 0 {
		t.Fatalf("premature action: offlines=%d restarts=%d", fx.ctl.offlines, fx.ctl.restarts)
	}
}

func TestCrashedAppLeftToNormalRestartPath(t *testing.T) {
	fx := newFixture(t)
	fx.sim.RunFor(5 * time.Second)
	fx.m.KillProc("press")
	fx.sim.RunFor(30 * time.Second)
	if fx.ctl.restarts != 0 || fx.ctl.offlines != 0 {
		t.Fatalf("FME acted on a crash: offlines=%d restarts=%d", fx.ctl.offlines, fx.ctl.restarts)
	}
}

func TestActionsCounter(t *testing.T) {
	fx := newFixture(t)
	fx.sim.RunFor(5 * time.Second)
	fx.m.Proc("press").Hang()
	fx.sim.RunFor(15 * time.Second)
	if fx.d.Actions() != 1 {
		t.Fatalf("Actions = %d", fx.d.Actions())
	}
}
