// Kernel-facing benchmarks: one fault-injection episode and one chaos
// campaign, memoization defeated, so ns/op and allocs/op track the real
// cost of simulating — the numbers BENCH_4.json records as the repo's
// trajectory. BenchmarkKernel (internal/sim) covers the raw event loop.
//
// Run with -benchtime=1x: a single iteration is a full simulation.
package press_test

import (
	"testing"

	"press"
)

// BenchmarkEpisode measures one COOP app-crash episode end to end —
// build, warmup, inject, repair, template extraction — on a private
// Cluster handle with its cache defeated each iteration. The
// 90%-of-saturation load probe is resolved once outside the loop so
// iterations time episode simulation only.
func BenchmarkEpisode(b *testing.B) {
	o := press.FastOptions(benchSeed)
	o.Rate = 0.9 * press.New(press.WithVersion(press.COOP), press.WithOptions(o)).Saturation()
	c := press.New(press.WithVersion(press.COOP), press.WithOptions(o))
	sched := press.FastSchedule()
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		c.ResetCaches()
		if _, err := c.RunEpisode(press.AppCrash, 0, sched); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkChaosCampaign measures a 2-seed chaos campaign against FME on
// the reduced-scale profile, caches defeated each iteration.
func BenchmarkChaosCampaign(b *testing.B) {
	o := press.FastOptions(benchSeed)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		press.ResetGlobalCaches()
		sum := press.RunChaosCampaign(press.FME, o, press.ChaosCampaignConfig{
			Seeds: press.ChaosSeeds(2),
		})
		for _, oc := range sum.Outcomes {
			if oc.Err != nil {
				b.Fatal(oc.Err)
			}
		}
	}
}
